// Package harness is the resilient parallel experiment runner underneath
// softcache-bench and softcache-sweep. It executes independent units of
// work (figure regenerations, sweep points, fault-injection cases) on a
// bounded worker pool, each under a context.Context with an optional
// per-run timeout, and treats the simulation stack as untrusted:
//
//   - a panic inside a unit is recovered and converted into a structured
//     failed-run record (key, error, stack, reproduction metadata) instead
//     of crashing the process;
//   - every completed unit is journaled to a JSONL checkpoint file, so an
//     interrupted run resumes without recomputing finished work;
//   - cancellation (Ctrl-C, a deadline) stops scheduling new units,
//     flushes the journal and reports the remaining units as canceled.
//
// Results are always returned in submission order regardless of worker
// count, so callers that render reports sequentially produce byte-identical
// output whether they ran with one worker or sixteen.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// Unit is one independent piece of work.
type Unit[T any] struct {
	// Key is the stable identity of the unit, used for journaling and
	// resume. Two units with the same key are assumed interchangeable, so
	// the key must encode everything the result depends on (figure id,
	// scale, seed, config, axis point...).
	Key string
	// Meta carries reproduction metadata (workload, config description,
	// seed, trace fingerprint). It is copied into failed-run records so a
	// crash report alone is enough to replay the unit deterministically.
	Meta map[string]string
	// Run computes the unit's value. It must honour ctx cancellation for
	// timeouts to take effect (see core.SimulateContext).
	Run func(ctx context.Context) (T, error)
	// Validate, when non-nil, vets a journal value before it is replayed
	// on resume. A non-nil error rejects the entry and the unit re-runs —
	// the structured analogue of an undecodable value. Fused units use it
	// to detect that the config group behind a key has changed shape since
	// the journal was written (see FusedUnit).
	Validate func(T) error
}

// Status classifies the outcome of one unit.
type Status string

const (
	// StatusOK means the unit completed and its value is valid.
	StatusOK Status = "ok"
	// StatusResumed means the value was replayed from the journal without
	// re-running the unit.
	StatusResumed Status = "resumed"
	// StatusFailed means Run returned an error.
	StatusFailed Status = "failed"
	// StatusPanic means Run panicked; the panic value and stack were
	// captured in the result.
	StatusPanic Status = "panic"
	// StatusTimeout means the per-unit timeout expired.
	StatusTimeout Status = "timeout"
	// StatusCanceled means the parent context was canceled before or while
	// the unit ran.
	StatusCanceled Status = "canceled"
)

// Result is the outcome of one unit, in submission order.
type Result[T any] struct {
	Key     string
	Status  Status
	Value   T
	Err     error
	Panic   string // panic value, when Status == StatusPanic
	Stack   string // goroutine stack at the panic site
	Meta    map[string]string
	Elapsed time.Duration
}

// OK reports whether the result carries a usable value.
func (r Result[T]) OK() bool { return r.Status == StatusOK || r.Status == StatusResumed }

// FailureRecord renders the structured failed-run record for stderr and
// logs: one line of summary plus the reproduction metadata, and the stack
// for panics.
func (r Result[T]) FailureRecord() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s: %s", r.Key, r.Status)
	switch r.Status {
	case StatusPanic:
		fmt.Fprintf(&b, ": panic: %s", r.Panic)
	case StatusFailed, StatusTimeout, StatusCanceled:
		if r.Err != nil {
			fmt.Fprintf(&b, ": %v", r.Err)
		}
	}
	if len(r.Meta) > 0 {
		keys := make([]string, 0, len(r.Meta))
		for k := range r.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\n  reproduce:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, r.Meta[k])
		}
	}
	if r.Stack != "" {
		b.WriteString("\n")
		b.WriteString(indent(r.Stack, "  "))
	}
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// Options configures a Run.
type Options struct {
	// Workers is the pool size; values below 1 mean 1.
	Workers int
	// Timeout bounds each unit's execution; 0 disables the per-unit
	// deadline. Units must be context-aware for the bound to bite.
	Timeout time.Duration
	// JournalPath, when non-empty, appends one JSONL record per completed
	// unit (ok and failed alike) to this file.
	JournalPath string
	// Resume replays units whose key has an ok record in the journal
	// instead of re-running them. Requires JournalPath.
	Resume bool
	// Log, when non-nil, receives one-line progress notes (resumes,
	// failures). The matrix/report rendering stays with the caller.
	Log io.Writer
}

// Summary aggregates the outcome counts of a Run.
type Summary struct {
	Total, OK, Resumed, Failed, Panicked, TimedOut, Canceled int
}

// Failures returns how many units did not produce a value.
func (s Summary) Failures() int { return s.Failed + s.Panicked + s.TimedOut + s.Canceled }

func (s Summary) String() string {
	parts := []string{fmt.Sprintf("%d/%d ok", s.OK+s.Resumed, s.Total)}
	if s.Resumed > 0 {
		parts = append(parts, fmt.Sprintf("%d resumed", s.Resumed))
	}
	if s.Failed > 0 {
		parts = append(parts, fmt.Sprintf("%d failed", s.Failed))
	}
	if s.Panicked > 0 {
		parts = append(parts, fmt.Sprintf("%d panicked", s.Panicked))
	}
	if s.TimedOut > 0 {
		parts = append(parts, fmt.Sprintf("%d timed out", s.TimedOut))
	}
	if s.Canceled > 0 {
		parts = append(parts, fmt.Sprintf("%d canceled", s.Canceled))
	}
	return strings.Join(parts, ", ")
}

// Summarize tallies a result slice.
func Summarize[T any](results []Result[T]) Summary {
	s := Summary{Total: len(results)}
	for _, r := range results {
		switch r.Status {
		case StatusOK:
			s.OK++
		case StatusResumed:
			s.Resumed++
		case StatusFailed:
			s.Failed++
		case StatusPanic:
			s.Panicked++
		case StatusTimeout:
			s.TimedOut++
		case StatusCanceled:
			s.Canceled++
		}
	}
	return s
}

// Run executes the units on a worker pool and returns their results in
// submission order. Unit failures (errors, panics, timeouts) are reported
// in the results, not as the returned error, which is reserved for harness
// infrastructure failures (an unreadable or unwritable journal) and for
// duplicate unit keys.
func Run[T any](ctx context.Context, units []Unit[T], opts Options) ([]Result[T], error) {
	if opts.Resume && opts.JournalPath == "" {
		return nil, errors.New("harness: Resume requires JournalPath")
	}
	seen := make(map[string]bool, len(units))
	for _, u := range units {
		if seen[u.Key] {
			return nil, fmt.Errorf("harness: duplicate unit key %q", u.Key)
		}
		seen[u.Key] = true
	}

	var resumable map[string]json.RawMessage
	if opts.Resume {
		var err error
		resumable, err = loadJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
	}
	var journal *journalWriter
	if opts.JournalPath != "" {
		var err error
		journal, err = openJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	results := make([]Result[T], len(units))
	var pending []int
	for i, u := range units {
		if raw, ok := resumable[u.Key]; ok {
			var v T
			if err := json.Unmarshal(raw, &v); err == nil {
				if u.Validate != nil {
					if verr := validateJournalValue(u, v); verr != nil {
						if opts.Log != nil {
							fmt.Fprintf(opts.Log, "harness: journal value for %s rejected (%v), re-running\n", u.Key, verr)
						}
						pending = append(pending, i)
						continue
					}
				}
				results[i] = Result[T]{Key: u.Key, Status: StatusResumed, Value: v, Meta: u.Meta}
				if opts.Log != nil {
					fmt.Fprintf(opts.Log, "harness: resumed %s from journal\n", u.Key)
				}
				continue
			}
			// An undecodable journal value (format drift) falls through to
			// a normal re-run.
		}
		pending = append(pending, i)
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(pending) && len(pending) > 0 {
		workers = len(pending)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				u := units[idx]
				if ctx.Err() != nil {
					results[idx] = Result[T]{Key: u.Key, Status: StatusCanceled, Err: ctx.Err(), Meta: u.Meta}
				} else {
					results[idx] = execute(ctx, u, opts.Timeout)
				}
				if journal != nil && results[idx].Status != StatusCanceled {
					journal.append(toEntry(results[idx]))
				}
				if opts.Log != nil && !results[idx].OK() {
					fmt.Fprintln(opts.Log, results[idx].FailureRecord())
				}
			}
		}()
	}
	for _, idx := range pending {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	if journal != nil {
		if err := journal.Close(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// validateJournalValue runs u.Validate with the same panic containment
// execute gives u.Run. Journal bytes are external input — hand-edited,
// written by an older build, or corrupted — so a Validate that panics on a
// decoded value must reject it (forcing a clean re-run of the unit), not
// crash the whole resumed run.
func validateJournalValue[T any](u Unit[T], v T) (verr error) {
	defer func() {
		if p := recover(); p != nil {
			verr = fmt.Errorf("harness: Validate for %s panicked: %v", u.Key, p)
		}
	}()
	return u.Validate(v)
}

// execute runs one unit with panic containment and the per-unit deadline.
func execute[T any](ctx context.Context, u Unit[T], timeout time.Duration) (res Result[T]) {
	res.Key = u.Key
	res.Meta = u.Meta
	runCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			res.Status = StatusPanic
			res.Panic = fmt.Sprint(p)
			res.Stack = string(debug.Stack())
			res.Err = fmt.Errorf("harness: unit %s panicked: %v", u.Key, p)
		}
	}()
	v, err := u.Run(runCtx)
	if err != nil {
		res.Err = err
		switch {
		case runCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil:
			res.Status = StatusTimeout
		case ctx.Err() != nil:
			res.Status = StatusCanceled
		default:
			res.Status = StatusFailed
		}
		return res
	}
	res.Status = StatusOK
	res.Value = v
	return res
}
