package harness

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"softcache/internal/core"
	"softcache/internal/trace"
)

// FaultCase is one corrupted input of the fault-injection corpus.
type FaultCase struct {
	// Name identifies the corruption applied.
	Name string
	// Data is the corrupted serialised trace.
	Data []byte
	// WantParseError is true when the corruption breaks the framing, so
	// the trace reader must reject the stream. When false the stream stays
	// structurally valid (e.g. flipped tag bits) and must instead survive
	// the full trace→simulate pipeline without a panic.
	WantParseError bool
}

// Corpus derives the fault-injection corpus from a healthy trace: header
// and record truncations, flipped magic/version bytes, absurd record
// counts, and tag/flag flips that keep the framing valid but corrupt the
// software hints. The corpus is deterministic, so failures reproduce.
func Corpus(t *trace.Trace) ([]FaultCase, error) {
	var buf bytes.Buffer
	if err := trace.Write(&buf, t); err != nil {
		return nil, fmt.Errorf("harness: serialising corpus seed: %w", err)
	}
	healthy := buf.Bytes()
	headerLen := 4 + 2 + 2 + len(t.Name) + 8 // magic, version, name len, name, count
	countOff := headerLen - 8

	clone := func() []byte { return append([]byte(nil), healthy...) }
	var cases []FaultCase

	// Truncations: inside the magic, the version, the name, the count, and
	// at several points inside the record stream.
	cuts := []struct {
		name string
		at   int
	}{
		{"truncated-empty", 0},
		{"truncated-mid-magic", 2},
		{"truncated-mid-version", 5},
		{"truncated-mid-name", 4 + 2 + 2 + len(t.Name)/2},
		{"truncated-mid-count", countOff + 3},
		{"truncated-first-record", headerLen + 7},
		{"truncated-mid-stream", headerLen + (len(healthy)-headerLen)/2},
		{"truncated-last-byte", len(healthy) - 1},
	}
	for _, c := range cuts {
		if c.at < 0 || c.at >= len(healthy) {
			continue
		}
		cases = append(cases, FaultCase{Name: c.name, Data: clone()[:c.at], WantParseError: true})
	}

	// Bad framing bytes.
	badMagic := clone()
	badMagic[0] = 'X'
	cases = append(cases, FaultCase{Name: "corrupt-magic", Data: badMagic, WantParseError: true})

	badVersion := clone()
	binary.LittleEndian.PutUint16(badVersion[4:6], 0x7fff)
	cases = append(cases, FaultCase{Name: "corrupt-version", Data: badVersion, WantParseError: true})

	// Absurd record counts: far beyond the budget, and plausible-but-wrong
	// (one more record than the stream holds).
	huge := clone()
	binary.LittleEndian.PutUint64(huge[countOff:countOff+8], ^uint64(0))
	cases = append(cases, FaultCase{Name: "absurd-count", Data: huge, WantParseError: true})

	offByOne := clone()
	binary.LittleEndian.PutUint64(offByOne[countOff:countOff+8], uint64(len(t.Records))+1)
	cases = append(cases, FaultCase{Name: "count-overruns-stream", Data: offByOne, WantParseError: true})

	// Tag flips: XOR the flags byte of a spread of records. The stream
	// still parses — the corruption is semantic (wrong hints), which the
	// simulator must absorb without panicking (with runtime invariant
	// checks on, any resulting state corruption surfaces as a structured
	// failure, not a crash).
	if n := len(t.Records); n > 0 {
		const recordSize = 15
		flagsOff := func(i int) int { return headerLen + i*recordSize + 14 }
		for _, f := range []struct {
			name string
			mask byte
		}{
			{"tag-flip-temporal", 1 << 1},
			{"tag-flip-spatial", 1 << 2},
			{"tag-flip-all-flags", 0xff},
		} {
			flipped := clone()
			for i := 0; i < n; i += 1 + n/17 {
				flipped[flagsOff(i)] ^= f.mask
			}
			cases = append(cases, FaultCase{Name: f.name, Data: flipped})
		}
		// Garbage in the address/size fields of a few records: still a
		// structurally valid stream, so it must simulate without panics.
		garbage := clone()
		for i := 0; i < n; i += 1 + n/5 {
			off := headerLen + i*recordSize
			for j := 0; j < recordSize-1; j++ {
				garbage[off+j] ^= 0xa5
			}
		}
		cases = append(cases, FaultCase{Name: "record-byte-garbage", Data: garbage})
	}
	return cases, nil
}

// FaultOutcome is the result of pushing one corpus case through the
// trace→simulate pipeline.
type FaultOutcome struct {
	Name string
	// ParseErr is the trace reader's rejection, if any.
	ParseErr string
	// SimErr is the simulation failure, if any (a structurally valid but
	// semantically corrupt stream may still simulate cleanly).
	SimErr string
	// References is the number of records simulated on success.
	References uint64
}

// Contained reports whether the pipeline behaved: a framing fault must be
// rejected by the parser, and every case must end in a value or an error —
// panics are converted to unit failures by the harness and fail the run.
func (o FaultOutcome) Contained(wantParseError bool) bool {
	if wantParseError {
		return o.ParseErr != ""
	}
	return true
}

// RunFaults pushes every corpus case through trace.Read and — when the
// stream parses — core.SimulateContext with runtime invariant checks
// enabled, all under the harness's panic containment. It returns the
// outcomes in corpus order plus the failed-run results for any case that
// panicked or was mishandled.
func RunFaults(ctx context.Context, corpus []FaultCase, cfg core.Config, opts Options) ([]Result[FaultOutcome], error) {
	cfg = core.WithRuntimeChecks(cfg, true)
	units := make([]Unit[FaultOutcome], len(corpus))
	for i, fc := range corpus {
		fc := fc
		units[i] = Unit[FaultOutcome]{
			Key: "fault:" + fc.Name,
			Meta: map[string]string{
				"case":  fc.Name,
				"bytes": fmt.Sprint(len(fc.Data)),
			},
			Run: func(runCtx context.Context) (FaultOutcome, error) {
				out := FaultOutcome{Name: fc.Name}
				tr, err := trace.Read(bytes.NewReader(fc.Data))
				if err != nil {
					out.ParseErr = err.Error()
					if !fc.WantParseError {
						return out, fmt.Errorf("harness: case %s: unexpected parse rejection: %w", fc.Name, err)
					}
					return out, nil
				}
				if fc.WantParseError {
					return out, fmt.Errorf("harness: case %s: corrupt stream accepted by parser", fc.Name)
				}
				res, err := core.SimulateContext(runCtx, cfg, tr)
				if err != nil {
					out.SimErr = err.Error()
					return out, nil
				}
				out.References = res.Stats.References
				return out, nil
			},
		}
	}
	return Run(ctx, units, opts)
}
