package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Entry is one JSONL journal record: the outcome of one unit. Failed runs
// are journaled too (they make the journal a crash log), but only ok
// entries are replayed on resume — failures are retried.
type Entry struct {
	Key       string            `json:"key"`
	Status    Status            `json:"status"`
	Err       string            `json:"err,omitempty"`
	Panic     string            `json:"panic,omitempty"`
	Stack     string            `json:"stack,omitempty"`
	Meta      map[string]string `json:"meta,omitempty"`
	ElapsedMS int64             `json:"elapsed_ms"`
	Value     json.RawMessage   `json:"value,omitempty"`
}

// toEntry converts a result to its journal form. A value that fails to
// marshal is journaled as a failure so resume never replays a bad payload.
func toEntry[T any](r Result[T]) Entry {
	e := Entry{
		Key:       r.Key,
		Status:    r.Status,
		Panic:     r.Panic,
		Stack:     r.Stack,
		Meta:      r.Meta,
		ElapsedMS: r.Elapsed.Milliseconds(),
	}
	if r.Err != nil {
		e.Err = r.Err.Error()
	}
	if r.Status == StatusOK {
		raw, err := json.Marshal(r.Value)
		if err != nil {
			e.Status = StatusFailed
			e.Err = fmt.Sprintf("harness: journaling value: %v", err)
		} else {
			e.Value = raw
		}
	}
	return e
}

// journalWriter appends entries to a JSONL file, one fsync-free line per
// entry, safe for concurrent workers.
type journalWriter struct {
	mu     sync.Mutex
	f      *os.File      // guarded by mu
	bw     *bufio.Writer // guarded by mu
	err    error         // guarded by mu
	closed bool          // guarded by mu
}

func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	return &journalWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

// append writes one entry and flushes it, so a killed process loses at most
// the entry being written.
func (j *journalWriter) append(e Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil || j.closed {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		j.err = fmt.Errorf("harness: encoding journal entry %s: %w", e.Key, err)
		return
	}
	if _, err := j.bw.Write(append(data, '\n')); err != nil {
		j.err = fmt.Errorf("harness: writing journal: %w", err)
		return
	}
	if err := j.bw.Flush(); err != nil {
		j.err = fmt.Errorf("harness: flushing journal: %w", err)
	}
}

func (j *journalWriter) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("harness: flushing journal: %w", err)
	}
	if err := j.f.Close(); err != nil && j.err == nil {
		j.err = fmt.Errorf("harness: closing journal: %w", err)
	}
	return j.err
}

// loadJournal reads a JSONL journal and returns the ok values by key (the
// last ok entry for a key wins). A missing file is an empty journal. A
// syntactically broken line fails the load: silently skipping it could
// silently recompute — or worse, skip — work, so the operator must decide
// (delete the journal or fix the line).
func loadJournal(path string) (map[string]json.RawMessage, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	defer f.Close()
	out := make(map[string]json.RawMessage)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("harness: journal %s line %d: %w", path, lineNo, err)
		}
		if e.Key == "" {
			return nil, fmt.Errorf("harness: journal %s line %d: entry without key", path, lineNo)
		}
		if e.Status == StatusOK && e.Value != nil {
			out[e.Key] = e.Value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: reading journal %s: %w", path, err)
	}
	return out, nil
}

// ReadEntries loads every entry of a journal file, for inspection and
// tests.
func ReadEntries(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	defer f.Close()
	return readEntries(f, path)
}

func readEntries(r io.Reader, path string) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("harness: journal %s line %d: %w", path, lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: reading journal %s: %w", path, err)
	}
	return out, nil
}

// entryElapsed is a helper for reports: the entry's elapsed time.
func (e Entry) Elapsed() time.Duration { return time.Duration(e.ElapsedMS) * time.Millisecond }
