package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"softcache/internal/trace"
)

// fakeTrace builds a trace with n records so tests control entry sizes.
func fakeTrace(name string, n int) *trace.Trace {
	t := &trace.Trace{Name: name}
	for i := 0; i < n; i++ {
		t.Append(trace.Record{Addr: uint64(i) * 4, Size: 4})
	}
	return t
}

func TestTraceCacheCoalescesConcurrentLoads(t *testing.T) {
	c := NewTraceCache(1 << 20)
	var loads atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	load := func() (*trace.Trace, error) {
		loads.Add(1)
		close(started)
		<-release
		return fakeTrace("shared", 100), nil
	}

	const n = 16
	var wg sync.WaitGroup
	got := make([]*trace.Trace, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Get(context.Background(), "k", load)
		}(i)
	}
	<-started // one loader is in flight; every other Get must now wait on it
	close(release)
	wg.Wait()

	if loads.Load() != 1 {
		t.Fatalf("load ran %d times, want 1", loads.Load())
	}
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", i, errs[i])
		}
		if got[i] != got[0] {
			t.Fatalf("get %d returned a different trace pointer", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Decodes != 1 || s.Hits != n-1 {
		t.Fatalf("stats misses=%d decodes=%d hits=%d, want 1/1/%d", s.Misses, s.Decodes, s.Hits, n-1)
	}
}

func TestTraceCacheEvictsLRU(t *testing.T) {
	perEntry := traceBytes(fakeTrace("e", 1000))
	c := NewTraceCache(1 << 20) // fits ~3 such entries per budget below
	c.budget = perEntry*3 + perEntry/2

	load := func(name string) func() (*trace.Trace, error) {
		return func() (*trace.Trace, error) { return fakeTrace(name, 1000), nil }
	}
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, err := c.Get(ctx, k, load(k)); err != nil {
			t.Fatal(err)
		}
	}
	// a is the least recently used and the budget holds 3: only a evicts.
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("evictions=%d entries=%d, want 1 and 3", s.Evictions, s.Entries)
	}
	var reloaded atomic.Int64
	if _, err := c.Get(ctx, "a", func() (*trace.Trace, error) {
		reloaded.Add(1)
		return fakeTrace("a", 1000), nil
	}); err != nil {
		t.Fatal(err)
	}
	if reloaded.Load() != 1 {
		t.Fatal("evicted entry was still served from cache")
	}
	// b was the LRU at that point and must have made room for a.
	if c.Stats().Evictions != 2 {
		t.Fatalf("evictions=%d, want 2", c.Stats().Evictions)
	}
}

func TestTraceCacheKeepsOversizedResident(t *testing.T) {
	c := NewTraceCache(1 << 20)
	c.budget = 1 // every entry is over budget
	ctx := context.Background()
	var loads atomic.Int64
	load := func() (*trace.Trace, error) {
		loads.Add(1)
		return fakeTrace("big", 5000), nil
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, "big", load); err != nil {
			t.Fatal(err)
		}
	}
	if loads.Load() != 1 {
		t.Fatalf("oversized trace reloaded %d times; the newest entry must stay resident", loads.Load())
	}
}

func TestTraceCacheLoadErrorNotCached(t *testing.T) {
	c := NewTraceCache(1 << 20)
	ctx := context.Background()
	boom := errors.New("decode failed")
	calls := 0
	load := func() (*trace.Trace, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return fakeTrace("ok", 10), nil
	}
	if _, err := c.Get(ctx, "k", load); !errors.Is(err, boom) {
		t.Fatalf("first get: %v, want %v", err, boom)
	}
	if _, err := c.Get(ctx, "k", load); err != nil {
		t.Fatalf("retry after failed load: %v", err)
	}
	s := c.Stats()
	if s.LoadFailures != 1 || s.Misses != 2 {
		t.Fatalf("failures=%d misses=%d, want 1 and 2", s.LoadFailures, s.Misses)
	}
}

func TestTraceCacheErrorSharedWithWaiters(t *testing.T) {
	c := NewTraceCache(1 << 20)
	boom := errors.New("decode failed")
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var waiterErr error
	go func() {
		defer wg.Done()
		_, waiterErr = c.Get(context.Background(), "k", func() (*trace.Trace, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	done := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), "k", func() (*trace.Trace, error) {
			t.Error("waiter ran its own load during an in-flight load")
			return nil, errors.New("unexpected load")
		})
		done <- err
	}()
	// The waiter's hit increment marks it as parked on the in-flight entry;
	// only then may the load be released (otherwise the waiter races the
	// post-failure cleanup and becomes a second loader).
	for c.hits.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if !errors.Is(waiterErr, boom) {
		t.Fatalf("loader got %v", waiterErr)
	}
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("waiter got %v, want the shared load error", err)
	}
}

func TestTraceCacheCanceledWaiter(t *testing.T) {
	c := NewTraceCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Get(context.Background(), "k", func() (*trace.Trace, error) {
			close(started)
			<-release
			return fakeTrace("k", 10), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}

	close(release)
	wg.Wait()
	// The load itself must have completed and been cached despite the
	// canceled waiter.
	var loads atomic.Int64
	if _, err := c.Get(context.Background(), "k", func() (*trace.Trace, error) {
		loads.Add(1)
		return nil, errors.New("should not run")
	}); err != nil {
		t.Fatal(err)
	}
	if loads.Load() != 0 {
		t.Fatal("completed load was not cached")
	}
}

// TestTraceCacheConcurrentChurn hammers the cache from many goroutines
// with a budget small enough to force constant eviction — primarily -race
// fodder for the lock discipline around entries, the LRU list and the
// byte accounting.
func TestTraceCacheConcurrentChurn(t *testing.T) {
	c := NewTraceCache(1 << 20)
	c.budget = traceBytes(fakeTrace("e", 500)) * 2

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (w+i)%5)
				tr, err := c.Get(ctx, key, func() (*trace.Trace, error) {
					if i%17 == 3 {
						return nil, errors.New("synthetic load failure")
					}
					return fakeTrace(key, 500), nil
				})
				if err == nil && tr.Name != key {
					t.Errorf("key %s got trace %s", key, tr.Name)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.Stats()
	if s.Hits+s.Misses != workers*iters {
		t.Fatalf("hits+misses = %d, want %d", s.Hits+s.Misses, workers*iters)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.used > c.budget && c.ll.Len() > 1 {
		t.Fatalf("budget not enforced: used=%d budget=%d entries=%d", c.used, c.budget, c.ll.Len())
	}
	var sum int64
	for e := c.ll.Front(); e != nil; e = e.Next() {
		sum += e.Value.(*traceEntry).bytes
	}
	if sum != c.used {
		t.Fatalf("byte accounting drifted: sum=%d used=%d", sum, c.used)
	}
}
