package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// streamBody POSTs raw bytes to /v1/simulate/trace with the given query.
func streamBody(t *testing.T, base, query string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/simulate/trace"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func testTraceBytes(t *testing.T) (tr *trace.Trace, flat, sctz []byte) {
	t.Helper()
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	var fb, zb bytes.Buffer
	if err := trace.Write(&fb, tr); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSCTZ(&zb, tr); err != nil {
		t.Fatal(err)
	}
	return tr, fb.Bytes(), zb.Bytes()
}

func TestSimulateTraceStreamed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr, flat, sctz := testTraceBytes(t)

	// The same trace streamed in either binary format must produce the
	// identical response (modulo nothing: both formats carry the name).
	stFlat, bodyFlat := streamBody(t, ts.URL, "?config=soft&config=standard", flat)
	if stFlat != http.StatusOK {
		t.Fatalf("flat stream: status %d: %s", stFlat, bodyFlat)
	}
	stZ, bodyZ := streamBody(t, ts.URL, "?config=soft&config=standard", sctz)
	if stZ != http.StatusOK {
		t.Fatalf("sctz stream: status %d: %s", stZ, bodyZ)
	}
	if !bytes.Equal(bodyFlat, bodyZ) {
		t.Fatalf("flat and sctz streams disagree:\nflat: %s\nsctz: %s", bodyFlat, bodyZ)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(bodyZ, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.References != uint64(tr.Len()) {
		t.Fatalf("references = %d, want %d", resp.References, tr.Len())
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}

	// The streamed answer must agree with the materialised endpoint run
	// over the same uploaded records (din carries addr+dir only, so the
	// comparison uses the binary upload against the workload baseline).
	stJSON, bodyJSON := post(t, ts.URL+"/v1/simulate",
		`{"workload":"MV","scale":"test","configs":[{"name":"soft"},{"name":"standard"}]}`)
	if stJSON != http.StatusOK {
		t.Fatalf("materialised simulate: status %d: %s", stJSON, bodyJSON)
	}
	var base SimulateResponse
	if err := json.Unmarshal(bodyJSON, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != len(resp.Results) {
		t.Fatalf("result count mismatch: %d vs %d", len(base.Results), len(resp.Results))
	}
	for i := range base.Results {
		if base.Results[i] != resp.Results[i] {
			t.Fatalf("result %d: streamed %+v != materialised %+v", i, resp.Results[i], base.Results[i])
		}
	}

	// Text format renders one report per config.
	stText, bodyText := streamBody(t, ts.URL, "?config=soft&format=text", sctz)
	if stText != http.StatusOK {
		t.Fatalf("text stream: status %d: %s", stText, bodyText)
	}
	if !strings.Contains(string(bodyText), "AMAT") {
		t.Fatalf("text report missing AMAT:\n%s", bodyText)
	}

	// The decode counters must have moved and be rendered in /metrics.
	stM, metricsBody := get(t, ts.URL+"/metrics")
	if stM != http.StatusOK {
		t.Fatalf("metrics: status %d", stM)
	}
	m := string(metricsBody)
	if !strings.Contains(m, "softcache_trace_decode_records_total") ||
		strings.Contains(m, "softcache_trace_decode_records_total 0\n") {
		t.Fatalf("decode records counter absent or zero:\n%s", m)
	}
	if !strings.Contains(m, "softcache_trace_decode_chunks_total") ||
		strings.Contains(m, "softcache_trace_decode_chunks_total 0\n") {
		t.Fatalf("decode chunks counter absent or zero after an SCTZ stream:\n%s", m)
	}
}

func TestSimulateTraceDin(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	din := "0 1000\n1 1008\n0 2000\n"
	st, body := streamBody(t, ts.URL, "?config=standard", []byte(din))
	if st != http.StatusOK {
		t.Fatalf("din stream: status %d: %s", st, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.References != 3 {
		t.Fatalf("references = %d, want 3", resp.References)
	}
}

func TestSimulateTraceRecordBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTraceRecords: 100})
	_, flat, sctz := testTraceBytes(t) // MV test scale is well over 100 records
	for name, body := range map[string][]byte{"flat": flat, "sctz": sctz} {
		st, resp := streamBody(t, ts.URL, "", body)
		if st != http.StatusRequestEntityTooLarge {
			t.Errorf("%s over budget: status %d (want 413): %s", name, st, resp)
		}
		if !strings.Contains(string(resp), "budget") {
			t.Errorf("%s over budget: error body does not name the budget: %s", name, resp)
		}
	}
}

func TestSimulateTraceBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, _, sctz := testTraceBytes(t)

	cases := []struct {
		name, query string
		body        []byte
		want        int
	}{
		{"garbage body", "", []byte("not a trace\n"), http.StatusBadRequest},
		{"truncated sctz", "", sctz[:len(sctz)-9], http.StatusBadRequest},
		{"unknown config", "?config=nope", sctz, http.StatusBadRequest},
		{"unknown param", "?wat=1", sctz, http.StatusBadRequest},
		{"bad override", "?line=banana", sctz, http.StatusBadRequest},
		{"bad format", "?format=xml", sctz, http.StatusBadRequest},
		{"too many configs", "?" + strings.Repeat("config=soft&", MaxConfigs+1), sctz, http.StatusBadRequest},
	}
	for _, tc := range cases {
		st, resp := streamBody(t, ts.URL, tc.query, tc.body)
		if st != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, st, tc.want, resp)
		}
	}

	// A corrupt SCTZ chunk (bit flip past the header) must fail the
	// request with 400, not 500: the body is client data.
	corrupt := append([]byte(nil), sctz...)
	corrupt[len(corrupt)/2] ^= 0x40
	st, resp := streamBody(t, ts.URL, "", corrupt)
	if st != http.StatusBadRequest {
		t.Errorf("corrupt sctz: status %d (want 400): %s", st, resp)
	}
}

func TestStreamRoutingKeyStable(t *testing.T) {
	_, _, sctz := testTraceBytes(t)
	k1 := StreamRoutingKey(sctz)
	k2 := StreamRoutingKey(sctz)
	if k1 != k2 {
		t.Fatalf("same bytes, different keys: %s vs %s", k1, k2)
	}
	if !strings.HasPrefix(k1, "stream:") {
		t.Fatalf("key %q lacks the stream: prefix", k1)
	}
	// Only the bounded prefix participates: appending beyond it must not
	// change the key, while perturbing an early byte must.
	long := make([]byte, StreamKeyPrefix+1024)
	copy(long, sctz)
	if StreamRoutingKey(long) != StreamRoutingKey(long[:StreamKeyPrefix]) {
		t.Fatal("bytes past the prefix changed the key")
	}
	perturbed := append([]byte(nil), sctz...)
	perturbed[8] ^= 1
	if StreamRoutingKey(perturbed) == k1 {
		t.Fatal("different prefix bytes produced the same key")
	}
}
