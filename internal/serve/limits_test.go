package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestMaxBodyBytes413 pins the configurable body cap: a request over the
// limit is refused with 413 (not a generic 400), the status the cluster
// router relies on to relay the refusal without retrying.
func TestMaxBodyBytes413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})

	small := `{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`
	code, body := post(t, ts.URL+"/v1/simulate", small)
	if code != 200 {
		t.Fatalf("request under the cap: %d %s", code, body)
	}

	big := fmt.Sprintf(`{"workload":"MV","scale":"test","seed":1,"din":%q}`, strings.Repeat("r 0 4\n", 100))
	code, body = post(t, ts.URL+"/v1/simulate", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s, want 413", code, body)
	}
}

// TestShardIdentity pins the fleet-observability satellite: a daemon
// configured with a shard ID stamps responses with X-Softcache-Shard and
// labels itself on /metrics, so the router (and an operator) can tell
// which replica answered.
func TestShardIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{ShardID: "s7"})

	req := `{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Softcache-Shard"); got != "s7" {
		t.Fatalf("X-Softcache-Shard=%q, want \"s7\"", got)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `softcache_shard_info{shard="s7"} 1`) {
		t.Fatalf("shard info series missing from /metrics:\n%s", metrics)
	}
}

// TestShardIDDefaultsOff: without a shard ID there is no header and the
// info series carries the empty label (the single-process case).
func TestShardIDDefaultsOff(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Softcache-Shard"); got != "" {
		t.Fatalf("unconfigured daemon sent X-Softcache-Shard=%q", got)
	}
}

// TestCacheBudgetGauge: /metrics exposes the trace cache's byte budget
// alongside its occupancy, so capacity planning does not require reading
// the deploy flags.
func TestCacheBudgetGauge(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: 2 << 20})
	_, metrics := get(t, ts.URL+"/metrics")
	if v := metricValue(t, string(metrics), "softcache_trace_cache_budget_bytes"); v != 2<<20 {
		t.Fatalf("budget gauge %v, want %d", v, 2<<20)
	}
}

// TestRoutingKey pins the exported routing-key derivation the cluster
// router shards by: it must equal the daemon's own trace-cache key, so a
// key routed consistently is also cached exactly once fleet-wide.
func TestRoutingKey(t *testing.T) {
	key, err := RoutingKey([]byte(`{"workload":"MV","scale":"test","seed":3,"configs":[{"name":"soft"}]}`))
	if err != nil || key != "workload:MV:test:3" {
		t.Fatalf("RoutingKey = %q, %v; want workload:MV:test:3", key, err)
	}
	// Seed defaults to 1, matching the handler's own defaulting.
	key, err = RoutingKey([]byte(`{"workload":"MV","scale":"test"}`))
	if err != nil || key != "workload:MV:test:1" {
		t.Fatalf("RoutingKey = %q, %v; want workload:MV:test:1", key, err)
	}
	din, err := RoutingKey([]byte(`{"din":"r 0 4\n"}`))
	if err != nil || !strings.HasPrefix(din, "din:") {
		t.Fatalf("RoutingKey(din) = %q, %v; want din:<hash>", din, err)
	}
	if _, err := RoutingKey([]byte(`{"workload":"no-such-workload"}`)); err == nil {
		t.Fatal("RoutingKey accepted an unknown workload")
	}
	if _, err := RoutingKey([]byte(`not json`)); err == nil {
		t.Fatal("RoutingKey accepted a non-JSON body")
	}
}
