package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"softcache/internal/resultcache"
)

// endpoint indexes the per-endpoint counters.
type endpoint int

const (
	epSimulate endpoint = iota
	epSimulateTrace
	epSweep
	epWorkloads
	epHealthz
	epMetrics
	epCount
)

func (e endpoint) String() string {
	switch e {
	case epSimulate:
		return "simulate"
	case epSimulateTrace:
		return "simulate_trace"
	case epSweep:
		return "sweep"
	case epWorkloads:
		return "workloads"
	case epHealthz:
		return "healthz"
	case epMetrics:
		return "metrics"
	}
	return "unknown"
}

// serverMetrics holds the daemon's own counters: requests and outcomes per
// endpoint, latency totals, and pool occupancy. All fields are atomics so
// handlers update them without a lock; /metrics renders a snapshot in the
// Prometheus text exposition format (hand-rolled — no client library, the
// format is just lines of "name{labels} value").
type serverMetrics struct {
	requests  [epCount]atomic.Uint64
	failures  [epCount]atomic.Uint64 // responses with status >= 400
	latencyNS [epCount]atomic.Int64
	rejected  atomic.Uint64 // 429: queue full
	timeouts  atomic.Uint64 // 504: per-request deadline
	panics    atomic.Uint64 // 500: simulation panic contained by the harness
	inflight  atomic.Int64  // requests holding a worker slot
	queued    atomic.Int64  // requests waiting for a worker slot
	// Streamed-trace decode volume (POST /v1/simulate/trace): records
	// decoded from request bodies and, for SCTZ bodies, chunks framed.
	traceRecords atomic.Uint64
	traceChunks  atomic.Uint64
}

// observe records one finished request.
func (m *serverMetrics) observe(ep endpoint, status int, d time.Duration) {
	m.requests[ep].Add(1)
	m.latencyNS[ep].Add(int64(d))
	if status >= 400 {
		m.failures[ep].Add(1)
	}
}

// WriteTo renders the counters (and the trace and result caches') as
// Prometheus text. shardID labels the daemon in a fleet ("" outside
// cluster mode); results is nil when no result cache is configured, in
// which case its series render as zeros so dashboards see a stable set.
func (m *serverMetrics) WriteTo(w io.Writer, cache *TraceCache, results *resultcache.Cache, shardID string) {
	fmt.Fprintf(w, "# TYPE softcache_shard_info gauge\nsoftcache_shard_info{shard=%q} 1\n", shardID)
	fmt.Fprintln(w, "# TYPE softcache_requests_total counter")
	for ep := endpoint(0); ep < epCount; ep++ {
		fmt.Fprintf(w, "softcache_requests_total{endpoint=%q} %d\n", ep, m.requests[ep].Load())
	}
	fmt.Fprintln(w, "# TYPE softcache_request_failures_total counter")
	for ep := endpoint(0); ep < epCount; ep++ {
		fmt.Fprintf(w, "softcache_request_failures_total{endpoint=%q} %d\n", ep, m.failures[ep].Load())
	}
	fmt.Fprintln(w, "# TYPE softcache_request_seconds_total counter")
	for ep := endpoint(0); ep < epCount; ep++ {
		secs := float64(m.latencyNS[ep].Load()) / float64(time.Second)
		fmt.Fprintf(w, "softcache_request_seconds_total{endpoint=%q} %.6f\n", ep, secs)
	}
	fmt.Fprintf(w, "# TYPE softcache_queue_rejections_total counter\nsoftcache_queue_rejections_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# TYPE softcache_request_timeouts_total counter\nsoftcache_request_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(w, "# TYPE softcache_simulation_panics_total counter\nsoftcache_simulation_panics_total %d\n", m.panics.Load())
	fmt.Fprintf(w, "# TYPE softcache_inflight_requests gauge\nsoftcache_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# TYPE softcache_queued_requests gauge\nsoftcache_queued_requests %d\n", m.queued.Load())
	fmt.Fprintf(w, "# TYPE softcache_trace_decode_records_total counter\nsoftcache_trace_decode_records_total %d\n", m.traceRecords.Load())
	fmt.Fprintf(w, "# TYPE softcache_trace_decode_chunks_total counter\nsoftcache_trace_decode_chunks_total %d\n", m.traceChunks.Load())

	cs := cache.Stats()
	fmt.Fprintf(w, "# TYPE softcache_trace_cache_hits_total counter\nsoftcache_trace_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE softcache_trace_cache_misses_total counter\nsoftcache_trace_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE softcache_trace_decodes_total counter\nsoftcache_trace_decodes_total %d\n", cs.Decodes)
	fmt.Fprintf(w, "# TYPE softcache_trace_cache_evictions_total counter\nsoftcache_trace_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# TYPE softcache_trace_load_failures_total counter\nsoftcache_trace_load_failures_total %d\n", cs.LoadFailures)
	fmt.Fprintf(w, "# TYPE softcache_trace_cache_bytes gauge\nsoftcache_trace_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "# TYPE softcache_trace_cache_entries gauge\nsoftcache_trace_cache_entries %d\n", cs.Entries)
	// Residency headroom: budget alongside occupancy makes the
	// eviction pressure on this shard's cache a first-class signal for
	// failover decisions instead of a guess.
	fmt.Fprintf(w, "# TYPE softcache_trace_cache_budget_bytes gauge\nsoftcache_trace_cache_budget_bytes %d\n", cs.Budget)

	// Durable result cache (internal/resultcache). Hits are responses
	// served from the segment log (or a coalesced flight); misses are
	// simulations actually run through the cache; corruptions are records
	// that failed their CRC on read and degraded to a miss.
	var rs resultcache.Stats
	if results != nil {
		rs = results.Stats()
	}
	fmt.Fprintf(w, "# TYPE softcache_result_cache_hits_total counter\nsoftcache_result_cache_hits_total %d\n", rs.Hits)
	fmt.Fprintf(w, "# TYPE softcache_result_cache_misses_total counter\nsoftcache_result_cache_misses_total %d\n", rs.Misses)
	fmt.Fprintf(w, "# TYPE softcache_result_cache_stores_total counter\nsoftcache_result_cache_stores_total %d\n", rs.Stores)
	fmt.Fprintf(w, "# TYPE softcache_result_cache_evictions_total counter\nsoftcache_result_cache_evictions_total %d\n", rs.Evictions)
	fmt.Fprintf(w, "# TYPE softcache_result_cache_corruptions_total counter\nsoftcache_result_cache_corruptions_total %d\n", rs.Corruptions)
	fmt.Fprintf(w, "# TYPE softcache_result_cache_bytes gauge\nsoftcache_result_cache_bytes %d\n", rs.Bytes)
	fmt.Fprintf(w, "# TYPE softcache_result_cache_entries gauge\nsoftcache_result_cache_entries %d\n", rs.Entries)
	fmt.Fprintf(w, "# TYPE softcache_result_cache_segments gauge\nsoftcache_result_cache_segments %d\n", rs.Segments)
}
