package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"softcache/internal/core"
	"softcache/internal/harness"
	"softcache/internal/resultcache"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// Config sizes the service. The zero value is usable: every field has a
// default chosen for an interactive daemon on one machine.
type Config struct {
	// Workers bounds the simulations running concurrently (default:
	// GOMAXPROCS). One request occupies one worker for its whole run — the
	// fused kernel already uses a single goroutine per config group.
	Workers int
	// QueueDepth bounds the requests waiting for a worker (default 64).
	// Requests beyond it are rejected immediately with 429 so load sheds
	// at the door instead of stacking up timeouts.
	QueueDepth int
	// CacheBytes is the decoded-trace cache budget (default 256 MiB).
	CacheBytes int64
	// DefaultTimeout bounds a request that does not ask for a deadline
	// (default 60s); MaxTimeout caps what a request may ask for (default
	// 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps one request body (default MaxBodyBytes, 32 MiB;
	// softcache-served's -max-body flag). The cluster router applies the
	// same cap before forwarding. Streamed trace bodies
	// (POST /v1/simulate/trace) are exempt: they decode in O(batch)
	// memory, so the meaningful bound is MaxTraceRecords, not bytes.
	MaxBodyBytes int64
	// MaxTraceRecords caps how many records one streamed trace body may
	// decode (default trace.MaxRecords; softcache-served's
	// -max-trace-records flag). Exceeding it fails the request with 413.
	MaxTraceRecords int64
	// ShardID labels this daemon in a fleet: when set, every response
	// carries it in the X-Softcache-Shard header and /metrics exposes it
	// as softcache_shard_info, so cluster tests and dashboards can tell
	// which replica served (and holds the trace resident).
	ShardID string
	// ResultCache, when non-nil, is the durable result cache consulted
	// before the worker pool on simulate/sweep/stream requests and
	// written behind on success (softcache-served opens it from
	// -result-cache-dir). The Server does not own it: the caller that
	// opened the cache closes it, after the listener has drained.
	ResultCache *resultcache.Cache
	// Log receives failure records (panics with stacks, timeouts); nil
	// discards them.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = MaxBodyBytes
	}
	if c.MaxTraceRecords <= 0 {
		c.MaxTraceRecords = trace.MaxRecords
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// Server is the simulation service: an http.Handler plus the shared state
// behind it (trace cache, admission pool, counters). Create with New and
// mount on any http.Server; graceful drain is the listener's business
// (http.Server.Shutdown), which softcache-served wires to SIGTERM.
type Server struct {
	cfg     Config
	traces  *TraceCache
	results *resultcache.Cache // nil: no durable result cache configured
	met     *serverMetrics
	sem     chan struct{} // worker slots
	mux     *http.ServeMux
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		traces:  NewTraceCache(cfg.CacheBytes),
		results: cfg.ResultCache,
		met:     &serverMetrics{},
		sem:     make(chan struct{}, cfg.Workers),
		mux:     http.NewServeMux(),
	}
	s.mux.Handle("POST /v1/simulate", s.instrument(epSimulate, s.handleSimulate))
	s.mux.Handle("POST /v1/simulate/trace", s.instrument(epSimulateTrace, s.handleSimulateTrace))
	s.mux.Handle("POST /v1/sweep", s.instrument(epSweep, s.handleSweep))
	s.mux.Handle("GET /v1/workloads", s.instrument(epWorkloads, s.handleWorkloads))
	s.mux.Handle("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with the per-endpoint request, failure and
// latency counters.
func (s *Server) instrument(ep endpoint, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.ShardID != "" {
			w.Header().Set("X-Softcache-Shard", s.cfg.ShardID)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.status == 0 {
			// The handler wrote nothing: the client went away mid-request.
			sw.status = 499
		}
		s.met.observe(ep, sw.status, time.Since(start))
	})
}

// writeError sends a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// admit claims a worker slot, queueing up to QueueDepth requests, and
// returns the release func. A full queue rejects immediately (429); a
// client that goes away while queued is released without running.
func (s *Server) admit(ctx context.Context) (release func(), err *apiError) {
	select {
	case s.sem <- struct{}{}:
	default:
		if s.met.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.met.queued.Add(-1)
			s.met.rejected.Add(1)
			// Retry-After tells clients (and the cluster router, which
			// relays rather than retries backpressure) when the queue is
			// worth another look.
			return nil, &apiError{status: http.StatusTooManyRequests,
				msg:        fmt.Sprintf("queue full (%d waiting); retry later", s.cfg.QueueDepth),
				retryAfter: 1}
		}
		defer s.met.queued.Add(-1)
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, &apiError{status: 499, msg: "client went away while queued"}
		}
	}
	s.met.inflight.Add(1)
	return func() {
		s.met.inflight.Add(-1)
		<-s.sem
	}, nil
}

// timeoutFor clamps a request's timeout_ms to the service bounds.
func (s *Server) timeoutFor(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// loadTrace fetches (or decodes) the plan's trace through the coalescing
// cache, mapping context errors to HTTP statuses.
func (s *Server) loadTrace(ctx context.Context, key string, load func() (*trace.Trace, error)) (*trace.Trace, *apiError) {
	tr, err := s.traces.Get(ctx, key, load)
	switch {
	case err == nil:
		return tr, nil
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Add(1)
		return nil, &apiError{status: http.StatusGatewayTimeout, msg: "deadline exceeded while loading trace"}
	case errors.Is(err, context.Canceled):
		return nil, &apiError{status: 499, msg: "client went away"}
	default:
		return nil, asAPIError(err)
	}
}

// runFused executes one config group as a single harness unit: one fused
// trace pass (run is core.SimulateManyTrace over a cached trace, or
// core.SimulateMany over a streamed body) with panic containment and the
// per-request deadline, mapped to an HTTP outcome. onErr, when non-nil,
// maps a run error to its status; nil means run errors are the server's
// fault (500) — the cached path validated everything up front.
func (s *Server) runFused(ctx context.Context, deadline time.Time, key string, descs []string, run func(context.Context) ([]core.Result, error), onErr func(error) *apiError) ([]core.Result, *apiError) {
	left := time.Until(deadline)
	if left <= 0 {
		s.met.timeouts.Add(1)
		return nil, &apiError{status: http.StatusGatewayTimeout, msg: "deadline exceeded"}
	}
	units := []harness.Unit[harness.Fused[core.Result]]{
		harness.FusedUnit(key, nil, descs, run),
	}
	results, err := harness.Run(ctx, units, harness.Options{Workers: 1, Timeout: left, Log: s.cfg.Log})
	if err != nil {
		// Impossible without a journal; fail loudly rather than guessing.
		return nil, &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	res := results[0]
	switch res.Status {
	case harness.StatusOK, harness.StatusResumed:
		return res.Value.Values, nil
	case harness.StatusPanic:
		s.met.panics.Add(1)
		return nil, &apiError{status: http.StatusInternalServerError, msg: "simulation panicked (see server log)"}
	case harness.StatusTimeout:
		s.met.timeouts.Add(1)
		return nil, &apiError{status: http.StatusGatewayTimeout, msg: "simulation deadline exceeded"}
	case harness.StatusCanceled:
		return nil, &apiError{status: 499, msg: "client went away"}
	default:
		if onErr != nil {
			return nil, onErr(res.Err)
		}
		return nil, &apiError{status: http.StatusInternalServerError, msg: res.Err.Error()}
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if aerr := decodeRequest(r, &req, s.cfg.MaxBodyBytes); aerr != nil {
		aerr.write(w)
		return
	}
	plan, aerr := req.validate()
	if aerr != nil {
		aerr.write(w)
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "json" && format != "text" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (want json or text)", format))
		return
	}

	// Result-cache fast path: a hit costs no worker slot, no trace, no
	// kernel run — the rendered body comes straight off the segment log.
	var key string
	if s.results != nil {
		key = s.resultKey("simulate", plan.traceKey, canonicalConfigs(plan.cfgs), format)
		if body, ok := s.results.Get(key); ok {
			writeResult(w, format, body, resultHit)
			return
		}
	}

	release, aerr := s.admit(r.Context())
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}
	defer release()

	deadline := time.Now().Add(s.timeoutFor(plan.timeout))
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	compute := func() ([]byte, *apiError) {
		tr, aerr := s.loadTrace(ctx, plan.traceKey, plan.load)
		if aerr != nil {
			return nil, aerr
		}
		// Pass the cancel-only request context: the deadline rides in
		// harness.Options.Timeout so the harness can tell a timeout (504)
		// from a vanished client.
		results, aerr := s.runFused(r.Context(), deadline, plan.traceKey, plan.descs,
			func(runCtx context.Context) ([]core.Result, error) {
				return core.SimulateManyTrace(runCtx, plan.cfgs, tr)
			}, nil)
		if aerr != nil {
			return nil, aerr
		}
		return renderSimulate(format, tr, results), nil
	}
	body, hit, aerr := s.resultDo(r.Context(), key, compute)
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}
	writeResult(w, format, body, s.resultOutcome(hit))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if aerr := decodeRequest(r, &req, s.cfg.MaxBodyBytes); aerr != nil {
		aerr.write(w)
		return
	}
	plan, aerr := req.validate()
	if aerr != nil {
		aerr.write(w)
		return
	}

	// Result-cache fast path (sweep responses are always JSON).
	var key string
	if s.results != nil {
		key = s.resultKey("sweep", plan.traceKey, canonicalSweep(plan), "json")
		if body, ok := s.results.Get(key); ok {
			writeResult(w, "json", body, resultHit)
			return
		}
	}

	release, aerr := s.admit(r.Context())
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}
	defer release()

	deadline := time.Now().Add(s.timeoutFor(plan.timeout))
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	compute := func() ([]byte, *apiError) {
		tr, aerr := s.loadTrace(ctx, plan.traceKey, plan.load)
		if aerr != nil {
			return nil, aerr
		}
		resp := SweepResponse{
			Trace:   tr.Name,
			Metric:  plan.metric,
			XKey:    plan.xAxis.Key,
			XValues: plan.xAxis.Values,
			YKey:    plan.yAxis.Key,
		}
		if plan.yAxis.Key != "" {
			resp.YValues = plan.yAxis.Values
		}
		// One fused pass per matrix row, sequential within the request's
		// single worker slot: request-level parallelism stays with the pool.
		for i, cfgs := range plan.rows {
			key := fmt.Sprintf("row:%d", i)
			rowCfgs := cfgs
			results, aerr := s.runFused(r.Context(), deadline, key, plan.rowDescs[i],
				func(runCtx context.Context) ([]core.Result, error) {
					return core.SimulateManyTrace(runCtx, rowCfgs, tr)
				}, nil)
			if aerr != nil {
				return nil, aerr
			}
			row := make([]float64, len(results))
			for j, res := range results {
				v, err := core.MetricOf(plan.metric, res)
				if err != nil {
					return nil, asAPIError(err)
				}
				row[j] = v
			}
			resp.Rows = append(resp.Rows, row)
		}
		return encodeJSON(resp), nil
	}
	body, hit, aerr := s.resultDo(r.Context(), key, compute)
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}
	writeResult(w, "json", body, s.resultOutcome(hit))
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	resp := WorkloadsResponse{
		Scales:  []string{"test", "paper"},
		Configs: core.ConfigNames(),
	}
	for _, n := range workloads.Names() {
		d, err := workloads.Get(n)
		if err != nil {
			continue
		}
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name:        d.Name,
			Description: d.Description,
			Kernel:      d.Kernel,
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WriteTo(w, s.traces, s.results, s.cfg.ShardID)
}
