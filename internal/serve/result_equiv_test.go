package serve

// Differential equivalence suite for the durable result cache: every
// cached response must be byte-identical to what a fresh computation
// would have produced — across formats, endpoints, concurrent churn,
// daemon restarts, and seeded on-disk corruption. The oracle is always a
// cache-less server answering the same requests.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"softcache/internal/resultcache"
)

// postH is post with response headers, which the result-cache tests need
// for the X-Softcache-Result and X-Softcache-Trace-Fingerprint stamps.
func postH(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// streamH is streamBody with response headers.
func streamH(t *testing.T, base, query string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/simulate/trace"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// equivRequest is one cell of the equivalence matrix: a named request
// that can be replayed against any server base URL.
type equivRequest struct {
	name string
	do   func(t *testing.T, base string) (int, http.Header, []byte)
}

func jsonReq(path, body string) func(*testing.T, string) (int, http.Header, []byte) {
	return func(t *testing.T, base string) (int, http.Header, []byte) {
		return postH(t, base+path, body)
	}
}

func streamReq(query string, body []byte) func(*testing.T, string) (int, http.Header, []byte) {
	return func(t *testing.T, base string) (int, http.Header, []byte) {
		return streamH(t, base, query, body)
	}
}

// equivMatrix covers {simulate, sweep, stream} × {json, text} × {flat,
// sctz} × {one workload, another}: every cacheable request shape the
// server offers. All keys are distinct, so a full pass over the matrix
// is len(matrix) misses and a second pass is len(matrix) hits.
func equivMatrix(t *testing.T) []equivRequest {
	t.Helper()
	_, flat, sctz := testTraceBytes(t)
	return []equivRequest{
		{"simulate-json-mv", jsonReq("/v1/simulate",
			`{"workload":"MV","scale":"test","seed":2,"configs":[{"name":"soft"},{"name":"standard"}]}`)},
		{"simulate-text-mv", jsonReq("/v1/simulate?format=text",
			`{"workload":"MV","scale":"test","seed":2,"configs":[{"name":"soft"}]}`)},
		{"simulate-json-fft", jsonReq("/v1/simulate",
			`{"workload":"FFT","scale":"test","configs":[{"name":"soft"}]}`)},
		{"sweep-1d", jsonReq("/v1/sweep",
			`{"workload":"MV","scale":"test","config":"soft","x":"cache=4,8,16","metric":"amat"}`)},
		{"sweep-2d", jsonReq("/v1/sweep",
			`{"workload":"MV","scale":"test","config":"soft","x":"cache=4,8","y":"latency=10,20","metric":"amat"}`)},
		{"stream-flat", streamReq("?config=soft&config=standard", flat)},
		{"stream-sctz", streamReq("?config=soft&config=standard", sctz)},
		{"stream-text", streamReq("?config=soft&format=text", flat)},
	}
}

// newCachedServer builds a Server wired to a fresh result cache over dir.
// The cache outlives the returned test server (cleanup closes the
// listener first, then the cache), mirroring the daemon's shutdown order.
func newCachedServer(t *testing.T, dir string) (*Server, *httptest.Server, *resultcache.Cache) {
	t.Helper()
	rc, err := resultcache.Open(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{ResultCache: rc})
	t.Cleanup(func() { rc.Close() })
	return s, ts, rc
}

// runMatrix replays every request against base, asserting status 200 and
// the expected X-Softcache-Result outcome ("hit", "miss", or "" for no
// header at all on the cache-less oracle). It returns the bodies.
func runMatrix(t *testing.T, reqs []equivRequest, base, outcome string) [][]byte {
	t.Helper()
	bodies := make([][]byte, len(reqs))
	for i, rq := range reqs {
		code, hdr, body := rq.do(t, base)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", rq.name, code, body)
		}
		if got := hdr.Get(ResultHeader); got != outcome {
			t.Fatalf("%s: %s = %q, want %q", rq.name, ResultHeader, got, outcome)
		}
		bodies[i] = body
	}
	return bodies
}

func wantSameBodies(t *testing.T, reqs []equivRequest, got, want [][]byte, label string) {
	t.Helper()
	for i := range reqs {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("%s: %s response differs from oracle:\ngot:  %s\nwant: %s",
				reqs[i].name, label, got[i], want[i])
		}
	}
}

// TestResultEquivalenceMatrix is the headline check: for every request
// shape, oracle bytes == cached-miss bytes == cached-hit bytes, and the
// counters account for every request exactly once.
func TestResultEquivalenceMatrix(t *testing.T) {
	reqs := equivMatrix(t)

	_, oracleTS := newTestServer(t, Config{}) // no result cache
	oracle := runMatrix(t, reqs, oracleTS.URL, "")

	_, cached, rc := newCachedServer(t, t.TempDir())
	missPass := runMatrix(t, reqs, cached.URL, "miss")
	hitPass := runMatrix(t, reqs, cached.URL, "hit")

	wantSameBodies(t, reqs, missPass, oracle, "miss")
	wantSameBodies(t, reqs, hitPass, oracle, "hit")

	n := uint64(len(reqs))
	st := rc.Stats()
	if st.Hits != n || st.Misses != n || st.Stores != n {
		t.Fatalf("stats = hits %d misses %d stores %d, want %d each", st.Hits, st.Misses, st.Stores, n)
	}
	if st.Corruptions != 0 || st.Evictions != 0 {
		t.Fatalf("unexpected corruptions %d / evictions %d", st.Corruptions, st.Evictions)
	}
	if st.Entries != len(reqs) {
		t.Fatalf("entries = %d, want %d", st.Entries, len(reqs))
	}
}

// TestResultEquivalenceUnderChurn hammers a small key set from many
// goroutines under -race: every response must be byte-identical to the
// oracle, and the coalescing must hold exactly — one computation per
// distinct key, everything else a hit.
func TestResultEquivalenceUnderChurn(t *testing.T) {
	reqs := []equivRequest{
		{"simulate-json", jsonReq("/v1/simulate",
			`{"workload":"MV","scale":"test","configs":[{"name":"soft"},{"name":"standard"}]}`)},
		{"simulate-text", jsonReq("/v1/simulate?format=text",
			`{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`)},
		{"sweep", jsonReq("/v1/sweep",
			`{"workload":"MV","scale":"test","config":"soft","x":"cache=4,8","metric":"amat"}`)},
	}
	_, oracleTS := newTestServer(t, Config{})
	oracle := runMatrix(t, reqs, oracleTS.URL, "")

	_, cached, rc := newCachedServer(t, t.TempDir())

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds*len(reqs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, rq := range reqs {
					code, hdr, body := rq.do(t, cached.URL)
					if code != http.StatusOK {
						errs <- fmt.Sprintf("%s: status %d", rq.name, code)
						continue
					}
					if o := hdr.Get(ResultHeader); o != resultHit && o != resultMiss {
						errs <- fmt.Sprintf("%s: outcome %q", rq.name, o)
					}
					if !bytes.Equal(body, oracle[i]) {
						errs <- fmt.Sprintf("%s: body diverged from oracle", rq.name)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	total := uint64(workers * rounds * len(reqs))
	st := rc.Stats()
	if st.Misses != uint64(len(reqs)) {
		t.Fatalf("misses = %d, want exactly %d (one compute per distinct key)", st.Misses, len(reqs))
	}
	if st.Hits != total-st.Misses {
		t.Fatalf("hits = %d, want %d (every other request)", st.Hits, total-st.Misses)
	}
	if st.Stores != uint64(len(reqs)) {
		t.Fatalf("stores = %d, want %d", st.Stores, len(reqs))
	}
}

// TestResultEquivalenceAcrossRestart populates a cache directory, tears
// the whole stack down, rebuilds a fresh server over the same directory,
// and requires every request to hit with byte-identical bodies — without
// a single trace decode on the new process.
func TestResultEquivalenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reqs := equivMatrix(t)

	rc1, err := resultcache.Open(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{ResultCache: rc1})
	first := runMatrix(t, reqs, ts1.URL, "miss")
	ts1.Close()
	if err := rc1.Close(); err != nil {
		t.Fatal(err)
	}

	rc2, err := resultcache.Open(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	s2, ts2 := newTestServer(t, Config{ResultCache: rc2})
	second := runMatrix(t, reqs, ts2.URL, "hit")
	wantSameBodies(t, reqs, second, first, "post-restart")

	st := rc2.Stats()
	if st.Hits != uint64(len(reqs)) || st.Misses != 0 {
		t.Fatalf("post-restart stats = hits %d misses %d, want %d/0", st.Hits, st.Misses, len(reqs))
	}
	// The restarted server answered everything from the log: no workload
	// regeneration, no stream decode.
	if d := s2.traces.Stats().Decodes; d != 0 {
		t.Fatalf("restarted server decoded %d traces, want 0", d)
	}
	if n := s2.met.traceRecords.Load(); n != 0 {
		t.Fatalf("restarted server decoded %d stream records, want 0", n)
	}
}

// readSegments returns the cache directory's segment files (sorted) and
// their concatenated pristine contents.
func readSegments(t *testing.T, dir string) (paths []string, sizes []int64, total int64) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".seg" {
			paths = append(paths, ent.Name())
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		fi, err := os.Stat(filepath.Join(dir, p))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
		total += fi.Size()
	}
	if total == 0 {
		t.Fatal("no segment bytes to corrupt")
	}
	return paths, sizes, total
}

// TestResultEquivalenceUnderCorruption seeds a populated cache directory
// with single-bit-pattern flips at offsets spread across the log, then
// replays the full matrix against each corrupted copy: every response
// must still be byte-identical to the original computation — a damaged
// entry degrades to a miss-and-recompute, never to a wrong answer — and
// the counters must account for every request.
func TestResultEquivalenceUnderCorruption(t *testing.T) {
	seedDir := t.TempDir()
	reqs := equivMatrix(t)

	rc, err := resultcache.Open(seedDir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{ResultCache: rc})
	oracle := runMatrix(t, reqs, ts.URL, "miss")
	ts.Close()
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}

	paths, sizes, total := readSegments(t, seedDir)

	const flips = 10
	var lostTotal uint64
	for round := 0; round < flips; round++ {
		off := total * int64(round) / flips
		// Map the global offset onto (file, local offset).
		fi, local := 0, off
		for local >= sizes[fi] {
			local -= sizes[fi]
			fi++
		}

		scratch := t.TempDir()
		for _, p := range paths {
			data, err := os.ReadFile(filepath.Join(seedDir, p))
			if err != nil {
				t.Fatal(err)
			}
			if p == paths[fi] {
				data = append([]byte(nil), data...)
				data[local] ^= 0xff
			}
			if err := os.WriteFile(filepath.Join(scratch, p), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		crc, err := resultcache.Open(scratch, 0, 0)
		if err != nil {
			t.Fatalf("flip %d (offset %d): open: %v", round, off, err)
		}
		_, cts := newTestServer(t, Config{ResultCache: crc})
		for i, rq := range reqs {
			code, hdr, body := rq.do(t, cts.URL)
			if code != http.StatusOK {
				t.Fatalf("flip %d: %s: status %d: %s", round, rq.name, code, body)
			}
			if o := hdr.Get(ResultHeader); o != resultHit && o != resultMiss {
				t.Fatalf("flip %d: %s: outcome %q", round, rq.name, o)
			}
			if !bytes.Equal(body, oracle[i]) {
				t.Errorf("flip %d (offset %d): %s: WRONG BYTES served from corrupted log", round, off, rq.name)
			}
		}
		st := crc.Stats()
		if st.Hits+st.Misses != uint64(len(reqs)) {
			t.Fatalf("flip %d: hits %d + misses %d != %d requests", round, st.Hits, st.Misses, len(reqs))
		}
		// A recompute restores the entry (stores == misses); scan-dropped
		// records miss without a read-time corruption event, so the
		// corruption counter is bounded by, not equal to, the misses.
		if st.Stores != st.Misses {
			t.Fatalf("flip %d: stores %d != misses %d", round, st.Stores, st.Misses)
		}
		if st.Corruptions > st.Misses {
			t.Fatalf("flip %d: corruptions %d > misses %d", round, st.Corruptions, st.Misses)
		}
		// Every byte of the log is load-bearing (header or CRC-framed
		// record), so each flip must cost at least one entry.
		if st.Misses == 0 {
			t.Fatalf("flip %d (offset %d): corruption went undetected", round, off)
		}
		lostTotal += st.Misses
		cts.Close()
		if err := crc.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if lostTotal == 0 {
		t.Fatal("corruption rounds lost nothing: the test is not exercising the log")
	}
}
