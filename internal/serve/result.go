package serve

// The durable result cache (internal/resultcache) sits in front of the
// worker pool: a request whose rendered response is already on disk is
// answered without claiming a worker slot, decoding a trace, or running
// the kernel. The cache stores fully rendered response bodies, so the
// hit path is a read + CRC check + write — byte-identical to fresh
// computation by construction, which the equivalence suites then prove
// rather than assume. Only successful (200) bodies are cached; errors,
// timeouts and backpressure are never durable.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/resultcache"
	"softcache/internal/trace"
)

const (
	// ResultHeader reports the result-cache outcome ("hit" or "miss") on
	// cacheable endpoints when the daemon runs with -result-cache-dir.
	// The cluster router relays it end to end, so a client can tell a
	// recomputed answer from a fetched one across the whole fleet.
	ResultHeader = "X-Softcache-Result"
	// TraceFingerprintHeader carries the content fingerprint (SHA-256,
	// hex) of a streamed /v1/simulate/trace body — the cache identity of
	// the upload, stamped whether or not a result cache is configured.
	TraceFingerprintHeader = "X-Softcache-Trace-Fingerprint"

	resultHit  = "hit"
	resultMiss = "miss"
)

// canonicalConfigs is the canonical serialization of a built config
// group: the deterministic JSON of the resolved []core.Config. Two
// requests that spell a config differently (named design vs explicit
// overrides) but resolve to the same group share one cache entry.
func canonicalConfigs(cfgs []core.Config) string {
	b, err := json.Marshal(cfgs)
	if err != nil {
		// core.Config is plain data; Marshal cannot fail. Guard anyway:
		// an empty canonical form would alias distinct groups.
		panic("serve: marshal config group: " + err.Error())
	}
	return string(b)
}

// resultKey derives the cache key for one computation. format "" means
// JSON (the API default) so both spellings share an entry.
func (s *Server) resultKey(kind, traceKey, configs, format string) string {
	if format == "" {
		format = "json"
	}
	return resultcache.Key{
		Kind:    kind,
		Trace:   traceKey,
		Configs: configs,
		Version: core.KernelVersion,
		Format:  format,
	}.String()
}

// sweepKeySpec is the canonicalized identity of a sweep computation:
// everything that shapes the response beyond the trace itself.
type sweepKeySpec struct {
	Metric  string          `json:"metric"`
	XKey    string          `json:"x_key"`
	XValues []int           `json:"x_values"`
	YKey    string          `json:"y_key"`
	YValues []int           `json:"y_values"`
	Rows    [][]core.Config `json:"rows"`
}

func canonicalSweep(plan *sweepPlan) string {
	b, err := json.Marshal(sweepKeySpec{
		Metric:  plan.metric,
		XKey:    plan.xAxis.Key,
		XValues: plan.xAxis.Values,
		YKey:    plan.yAxis.Key,
		YValues: plan.yAxis.Values,
		Rows:    plan.rows,
	})
	if err != nil {
		panic("serve: marshal sweep spec: " + err.Error())
	}
	return string(b)
}

// encodeJSON renders v exactly as writeJSON does (two-space indent,
// trailing newline), but to a buffer — the cached bytes and the streamed
// bytes come from the same encoder configuration, so a cache hit is
// byte-identical to a fresh response by construction.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(v)
	return buf.Bytes()
}

// renderSimulate produces the response body of a successful simulate —
// the same bytes handleSimulate has always written, now built in memory
// so they can be stored as well as sent.
func renderSimulate(format string, tr *trace.Trace, results []core.Result) []byte {
	if format == "text" {
		var buf bytes.Buffer
		tags := tr.CountTags()
		for i, res := range results {
			if i > 0 {
				buf.WriteByte('\n')
			}
			metrics.SimulationReport(&buf, tags, res)
		}
		return buf.Bytes()
	}
	resp := SimulateResponse{Trace: tr.Name, References: uint64(len(tr.Records))}
	for _, res := range results {
		resp.Results = append(resp.Results, ConfigResult{
			Config:      res.Config,
			AMAT:        res.AMAT(),
			MissRatio:   res.MissRatio(),
			WordsPerRef: res.Stats.WordsPerReference(),
			Stats:       res.Stats,
		})
	}
	return encodeJSON(resp)
}

// writeResult sends a rendered response body with its cache outcome.
// outcome "" (no result cache configured) omits the header.
func writeResult(w http.ResponseWriter, format string, body []byte, outcome string) {
	if outcome != "" {
		w.Header().Set(ResultHeader, outcome)
	}
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Write(body)
}

// resultOutcome maps a Do result to the header value, "" when the cache
// is disabled.
func (s *Server) resultOutcome(hit bool) string {
	if s.results == nil {
		return ""
	}
	if hit {
		return resultHit
	}
	return resultMiss
}

// resultDo runs compute through the result cache's singleflight (N
// identical concurrent requests cost one simulation), or directly when
// no cache is configured. Only successful bodies reach the cache:
// compute's *apiError travels through resultcache.Do as an error and is
// unwrapped here.
func (s *Server) resultDo(ctx context.Context, key string, compute func() ([]byte, *apiError)) ([]byte, bool, *apiError) {
	if s.results == nil {
		body, aerr := compute()
		return body, false, aerr
	}
	body, hit, err := s.results.Do(ctx, key, func() ([]byte, error) {
		body, aerr := compute()
		if aerr != nil {
			return nil, aerr
		}
		return body, nil
	})
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			return nil, false, ae
		}
		if errors.Is(err, context.Canceled) {
			return nil, false, &apiError{status: 499, msg: "client went away"}
		}
		return nil, false, &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	return body, hit, nil
}
