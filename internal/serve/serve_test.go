package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/workloads"
)

// newTestServer builds a Server plus an httptest listener around it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// stickEntry plants a loading entry that never completes under key, so
// requests for it block until their deadline — the deterministic way to
// occupy workers (429 tests) and trip deadlines (504 tests). The returned
// func completes the load with an error, releasing every waiter.
func stickEntry(s *Server, key string) (unstick func()) {
	e := &traceEntry{key: key, ready: make(chan struct{})}
	s.traces.mu.Lock()
	s.traces.entries[key] = e
	s.traces.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			e.err = fmt.Errorf("test: entry released")
			close(e.ready)
			s.traces.mu.Lock()
			delete(s.traces.entries, key)
			s.traces.mu.Unlock()
		})
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/v1/workloads")
	if code != 200 {
		t.Fatalf("workloads: %d %s", code, body)
	}
	var resp WorkloadsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Workloads) != len(workloads.Names()) {
		t.Fatalf("listed %d workloads, registry has %d", len(resp.Workloads), len(workloads.Names()))
	}
	if len(resp.Configs) != len(core.ConfigNames()) {
		t.Fatalf("listed %d configs, want %d", len(resp.Configs), len(core.ConfigNames()))
	}
}

// TestSimulateTextMatchesSharedReport pins /v1/simulate?format=text to the
// shared renderer over an independently computed core.Simulate run. The
// CLI side of the bridge (cmd/softcache-sim's TestOutputIsSharedReport)
// pins softcache-sim to the same renderer, making daemon and CLI output
// byte-identical for identical runs.
func TestSimulateTextMatchesSharedReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"workload":"MV","scale":"test","seed":3,"configs":[{"name":"soft"}]}`
	code, body := post(t, ts.URL+"/v1/simulate?format=text", req)
	if code != 200 {
		t.Fatalf("simulate: %d %s", code, body)
	}

	tr, err := workloads.Trace("MV", workloads.ScaleTest, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(core.Soft(), tr)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	metrics.SimulationReport(&want, tr.CountTags(), res)
	if string(body) != want.String() {
		t.Fatalf("text output diverged from metrics.SimulationReport:\n--- server\n%s--- shared\n%s", body, want.String())
	}
}

func TestSimulateJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"workload":"SpMV","scale":"test","configs":[{"name":"standard"},{"name":"soft","vline":128}]}`
	code, body := post(t, ts.URL+"/v1/simulate", req)
	if code != 200 {
		t.Fatalf("simulate: %d %s", code, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(resp.Results))
	}

	tr, err := workloads.Trace("SpMV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	soft := core.Soft()
	soft.VirtualLineSize = 128
	for i, cfg := range []core.Config{core.Standard(), soft} {
		want, err := core.Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[i]
		if got.Config != want.Config || got.AMAT != want.AMAT() || got.MissRatio != want.MissRatio() {
			t.Fatalf("result %d: got %+v want config=%s amat=%v miss=%v",
				i, got, want.Config, want.AMAT(), want.MissRatio())
		}
		if got.Stats != want.Stats {
			t.Fatalf("result %d: stats diverged from core.Simulate", i)
		}
	}
	if resp.References != uint64(len(tr.Records)) {
		t.Fatalf("references %d, want %d", resp.References, len(tr.Records))
	}
}

// metricValue extracts one counter from the /metrics text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestSimulateCoalescing is the tentpole's acceptance test: 8 concurrent
// requests for the same trace must cost exactly one decode, visible both
// in the cache counters and on /metrics.
func TestSimulateCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8})
	const n = 8
	req := `{"workload":"MV","scale":"test","seed":7,"configs":[{"name":"soft"}]}`

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate?format=text", "application/json", strings.NewReader(req))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == 200 {
				bodies[i], _ = io.ReadAll(resp.Body)
			}
		}(i)
	}
	wg.Wait()

	for i, b := range bodies {
		if len(b) == 0 {
			t.Fatalf("request %d failed", i)
		}
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("request %d returned a different report", i)
		}
	}

	cs := s.traces.Stats()
	if cs.Decodes != 1 || cs.Misses != 1 || cs.Hits != n-1 {
		t.Fatalf("coalescing broken: decodes=%d misses=%d hits=%d (want 1/1/%d)",
			cs.Decodes, cs.Misses, cs.Hits, n-1)
	}

	_, mb := get(t, ts.URL+"/metrics")
	if v := metricValue(t, string(mb), "softcache_trace_decodes_total"); v != 1 {
		t.Fatalf("metrics decodes %v, want 1", v)
	}
	if v := metricValue(t, string(mb), "softcache_trace_cache_hits_total"); v != n-1 {
		t.Fatalf("metrics hits %v, want %d", v, n-1)
	}
	if v := metricValue(t, string(mb), `softcache_requests_total{endpoint="simulate"}`); v != n {
		t.Fatalf("metrics simulate requests %v, want %d", v, n)
	}
}

func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"empty body", "/v1/simulate", ``},
		{"not json", "/v1/simulate", `hello`},
		{"trailing garbage", "/v1/simulate", `{"workload":"MV","configs":[{}]} extra`},
		{"unknown field", "/v1/simulate", `{"workload":"MV","configs":[{}],"bogus":1}`},
		{"no trace", "/v1/simulate", `{"configs":[{"name":"soft"}]}`},
		{"no configs", "/v1/simulate", `{"workload":"MV"}`},
		{"unknown workload", "/v1/simulate", `{"workload":"nope","configs":[{}]}`},
		{"bad scale", "/v1/simulate", `{"workload":"MV","scale":"huge","configs":[{}]}`},
		{"workload and din", "/v1/simulate", `{"workload":"MV","din":"0 0","configs":[{}]}`},
		{"din with scale", "/v1/simulate", `{"din":"0 0","scale":"test","configs":[{}]}`},
		{"unknown config", "/v1/simulate", `{"workload":"MV","configs":[{"name":"zz"}]}`},
		{"zero line", "/v1/simulate", `{"workload":"MV","configs":[{"vline":3}]}`},
		{"non-pow2 cache", "/v1/simulate", `{"workload":"MV","configs":[{"cache_kb":3}]}`},
		{"absurd cache", "/v1/simulate", `{"workload":"MV","configs":[{"cache_kb":1048576}]}`},
		{"negative latency", "/v1/simulate", `{"workload":"MV","configs":[{"latency":-5}]}`},
		{"float where int", "/v1/simulate", `{"workload":"MV","configs":[{"cache_kb":8.5}]}`},
		{"nan-ish", "/v1/simulate", `{"workload":"MV","configs":[{"cache_kb":NaN}]}`},
		{"too many configs", "/v1/simulate", tooManyConfigs()},
		{"negative timeout", "/v1/simulate", `{"workload":"MV","configs":[{}],"timeout_ms":-1}`},
		{"bad din", "/v1/simulate", `{"din":"9 zz\n","configs":[{}]}`},
		{"sweep no x", "/v1/sweep", `{"workload":"MV"}`},
		{"sweep bad axis", "/v1/sweep", `{"workload":"MV","x":"warp=1,2"}`},
		{"sweep dup axis", "/v1/sweep", `{"workload":"MV","x":"cache=4,8","y":"cache=16,32"}`},
		{"sweep bad metric", "/v1/sweep", `{"workload":"MV","x":"cache=4,8","metric":"speed"}`},
		{"sweep bad cell", "/v1/sweep", `{"workload":"MV","x":"cache=3,5"}`},
		{"sweep absurd cell", "/v1/sweep", `{"workload":"MV","x":"cache=1048576"}`},
	}
	for _, tc := range cases {
		code, body := post(t, ts.URL+tc.url, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", tc.name, code, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}

	if code, _ := post(t, ts.URL+"/v1/simulate?format=xml",
		`{"workload":"MV","scale":"test","configs":[{}]}`); code != 400 {
		t.Errorf("unknown format: status %d, want 400", code)
	}
}

func tooManyConfigs() string {
	var b strings.Builder
	b.WriteString(`{"workload":"MV","configs":[`)
	for i := 0; i <= MaxConfigs; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"name":"soft"}`)
	}
	b.WriteString(`]}`)
	return b.String()
}

func TestSimulateDin(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var din strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&din, "0 %x\n", 0x1000+i*4)
		fmt.Fprintf(&din, "1 %x\n", 0x8000+i*32)
	}
	body, err := json.Marshal(map[string]any{
		"din":     din.String(),
		"configs": []map[string]any{{"name": "standard"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	code, data := post(t, ts.URL+"/v1/simulate", string(body))
	if code != 200 {
		t.Fatalf("din simulate: %d %s", code, data)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.References != 128 {
		t.Fatalf("references %d, want 128", resp.References)
	}
}

func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	key := "workload:MV:test:1"
	unstick := stickEntry(s, key)
	defer unstick()

	req := `{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`
	// First request occupies the only worker (blocked on the stuck entry),
	// second fills the queue; the third must bounce with 429 immediately.
	hold := func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(req))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); hold() }()
	}
	// Wait until one request holds the worker and one is queued.
	deadline := time.Now().Add(5 * time.Second)
	for s.met.inflight.Load() != 1 || s.met.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never filled: inflight=%d queued=%d", s.met.inflight.Load(), s.met.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: %d %s (want 429)", resp.StatusCode, body)
	}
	// Backpressure must tell clients (and the cluster router) when to
	// come back instead of leaving them to guess.
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After=%q, want \"1\"", ra)
	}
	if s.met.rejected.Load() != 1 {
		t.Fatalf("rejected counter %d, want 1", s.met.rejected.Load())
	}

	unstick()
	wg.Wait()
}

func TestSimulateTimeout504(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	unstick := stickEntry(s, "workload:SpMV:test:9")
	defer unstick()

	req := `{"workload":"SpMV","scale":"test","seed":9,"configs":[{"name":"soft"}],"timeout_ms":50}`
	code, body := post(t, ts.URL+"/v1/simulate", req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("stuck trace: %d %s (want 504)", code, body)
	}
	if s.met.timeouts.Load() != 1 {
		t.Fatalf("timeout counter %d, want 1", s.met.timeouts.Load())
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"workload":"MV","scale":"test","config":"soft","x":"cache=4,8","y":"latency=10,20","metric":"amat"}`
	code, body := post(t, ts.URL+"/v1/sweep", req)
	if code != 200 {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 || len(resp.Rows[0]) != 2 {
		t.Fatalf("matrix shape %dx%d, want 2x2", len(resp.Rows), len(resp.Rows[0]))
	}

	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, lat := range []int{10, 20} {
		for j, kb := range []int{4, 8} {
			cfg, err := core.ApplyAxis(core.Soft(), "latency", lat)
			if err != nil {
				t.Fatal(err)
			}
			if cfg, err = core.ApplyAxis(cfg, "cache", kb); err != nil {
				t.Fatal(err)
			}
			want, err := core.Simulate(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got := resp.Rows[i][j]; got != want.AMAT() {
				t.Fatalf("cell [%d][%d]: got %v, want %v", i, j, got, want.AMAT())
			}
		}
	}
}

// TestCanceledClientLeavesNoFailure checks a vanished client is not a
// server failure: the handler stops, nothing is written, and the request
// counts with the sentinel 499 status.
func TestCanceledClientLeavesNoFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	unstick := stickEntry(s, "workload:MV:test:5")
	defer unstick()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate",
		strings.NewReader(`{"workload":"MV","scale":"test","seed":5,"configs":[{"name":"soft"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("expected the client-side deadline to fire")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.met.requests[epSimulate].Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	if n := s.met.timeouts.Load(); n != 0 {
		t.Fatalf("client cancel recorded as server timeout (%d)", n)
	}
}
