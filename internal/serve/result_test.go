package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strings"
	"testing"

	"softcache/internal/core"
	"softcache/internal/resultcache"
	"softcache/internal/trace"
)

// TestResultHeaderLifecycle pins the X-Softcache-Result contract: absent
// without a cache, "miss" on first computation, "hit" on the repeat, and
// never present on a request that fails before reaching the cache.
func TestResultHeaderLifecycle(t *testing.T) {
	req := `{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`

	_, bare := newTestServer(t, Config{})
	code, hdr, _ := postH(t, bare.URL+"/v1/simulate", req)
	if code != http.StatusOK {
		t.Fatalf("bare simulate: %d", code)
	}
	if _, ok := hdr[ResultHeader]; ok {
		t.Fatalf("cache-less server stamped %s", ResultHeader)
	}

	_, cached, rc := newCachedServer(t, t.TempDir())
	code, hdr, first := postH(t, cached.URL+"/v1/simulate", req)
	if code != http.StatusOK || hdr.Get(ResultHeader) != resultMiss {
		t.Fatalf("first request: %d %s=%q", code, ResultHeader, hdr.Get(ResultHeader))
	}
	code, hdr, second := postH(t, cached.URL+"/v1/simulate", req)
	if code != http.StatusOK || hdr.Get(ResultHeader) != resultHit {
		t.Fatalf("repeat request: %d %s=%q", code, ResultHeader, hdr.Get(ResultHeader))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("hit bytes differ from miss bytes")
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("hit Content-Type = %q", ct)
	}

	// A request rejected at parse time never touches the ledger.
	code, hdr, _ = postH(t, cached.URL+"/v1/simulate", `{"workload":"NOPE","configs":[{"name":"soft"}]}`)
	if code == http.StatusOK {
		t.Fatal("bogus workload accepted")
	}
	if _, ok := hdr[ResultHeader]; ok {
		t.Fatalf("failed request stamped %s", ResultHeader)
	}
	st := rc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = hits %d misses %d stores %d, want 1/1/1", st.Hits, st.Misses, st.Stores)
	}
}

// TestResultKeyCarriesKernelVersion pins the serve-side key derivation to
// core.KernelVersion (satellite of the version-bump invalidation test in
// internal/resultcache): the server's key must equal the resultcache.Key
// spelling with the current kernel version, and changing any field —
// version included — must change the key.
func TestResultKeyCarriesKernelVersion(t *testing.T) {
	s := New(Config{})
	got := s.resultKey("simulate", "traceK", "cfgK", "")
	want := resultcache.Key{
		Kind:    "simulate",
		Trace:   "traceK",
		Configs: "cfgK",
		Version: core.KernelVersion,
		Format:  "json",
	}.String()
	if got != want {
		t.Fatalf("resultKey = %q, want %q", got, want)
	}
	if !strings.HasPrefix(got, "simulate:") {
		t.Fatalf("key %q does not lead with its kind", got)
	}
	// format "" and "json" are one entry; everything else separates.
	if s.resultKey("simulate", "traceK", "cfgK", "json") != got {
		t.Fatal("format \"\" and \"json\" should share a key")
	}
	bumped := resultcache.Key{
		Kind: "simulate", Trace: "traceK", Configs: "cfgK",
		Version: core.KernelVersion + "+next", Format: "json",
	}.String()
	if bumped == got {
		t.Fatal("kernel version bump did not change the key")
	}
	if s.resultKey("simulate", "traceK", "cfgK", "text") == got {
		t.Fatal("format should separate keys")
	}
}

// TestStreamFingerprintHeader pins X-Softcache-Trace-Fingerprint to the
// SHA-256 of the exact uploaded bytes — with and without a result cache,
// on miss and on hit.
func TestStreamFingerprintHeader(t *testing.T) {
	_, flat, sctz := testTraceBytes(t)
	wantFlat := hex.EncodeToString(func() []byte { h := sha256.Sum256(flat); return h[:] }())
	wantSctz := hex.EncodeToString(func() []byte { h := sha256.Sum256(sctz); return h[:] }())
	if wantFlat == wantSctz {
		t.Fatal("test traces share a fingerprint")
	}

	check := func(base, label string, body []byte, want, outcome string) {
		t.Helper()
		code, hdr, respBody := streamH(t, base, "?config=soft", body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, code, respBody)
		}
		if got := hdr.Get(TraceFingerprintHeader); got != want {
			t.Fatalf("%s: %s = %q, want %q", label, TraceFingerprintHeader, got, want)
		}
		if got := hdr.Get(ResultHeader); got != outcome {
			t.Fatalf("%s: %s = %q, want %q", label, ResultHeader, got, outcome)
		}
	}

	_, bare := newTestServer(t, Config{})
	check(bare.URL, "bare flat", flat, wantFlat, "")
	check(bare.URL, "bare sctz", sctz, wantSctz, "")

	_, cached, _ := newCachedServer(t, t.TempDir())
	check(cached.URL, "cached flat miss", flat, wantFlat, resultMiss)
	check(cached.URL, "cached flat hit", flat, wantFlat, resultHit)
	check(cached.URL, "cached sctz miss", sctz, wantSctz, resultMiss)
	check(cached.URL, "cached sctz hit", sctz, wantSctz, resultHit)
}

// collidingTraces builds two flat-encoded traces whose bodies share their
// first StreamKeyPrefix bytes (same name, same record count, identical
// records) but diverge in the final record — a genuine prefix collision
// for the stream cache's envelope check.
func collidingTraces(t *testing.T) (a, b []byte) {
	t.Helper()
	mk := func(lastAddr uint64) []byte {
		tr := &trace.Trace{Name: "collide"}
		const n = 6000 // 15 bytes/record: the divergence sits far past the 64 KiB prefix
		tr.Records = make([]trace.Record, n)
		for i := range tr.Records {
			tr.Records[i] = trace.Record{Addr: uint64(i) * 8, Size: 8, Gap: 1}
		}
		tr.Records[n-1].Addr = lastAddr
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// The variants must differ observably: one final access lands in the
	// line just touched (a sure hit), the other revisits address 0, long
	// evicted by the sequential sweep (a sure miss) — one extra miss
	// separates the two responses.
	a, b = mk(5998*8), mk(0)
	if len(a) <= StreamKeyPrefix {
		t.Fatalf("colliding body is only %d bytes, need > %d", len(a), StreamKeyPrefix)
	}
	if !bytes.Equal(a[:StreamKeyPrefix], b[:StreamKeyPrefix]) {
		t.Fatal("bodies do not share a prefix")
	}
	if bytes.Equal(a, b) {
		t.Fatal("bodies are identical")
	}
	return a, b
}

// TestStreamPrefixCollisionRecomputes proves a prefix collision can cost
// a spool replay but never a wrong answer: the cached envelope's full
// fingerprint rejects the colliding body, the kernel recomputes it, and
// the newest upload takes over the prefix slot.
func TestStreamPrefixCollisionRecomputes(t *testing.T) {
	bodyA, bodyB := collidingTraces(t)

	_, bare := newTestServer(t, Config{})
	_, oracleA := streamBody(t, bare.URL, "?config=soft", bodyA)
	_, oracleB := streamBody(t, bare.URL, "?config=soft", bodyB)
	if bytes.Equal(oracleA, oracleB) {
		t.Fatal("colliding traces produce identical responses; collision would be invisible")
	}

	_, cached, rc := newCachedServer(t, t.TempDir())
	step := func(label string, body, oracle []byte, outcome string) {
		t.Helper()
		code, hdr, got := streamH(t, cached.URL, "?config=soft", body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, code, got)
		}
		if o := hdr.Get(ResultHeader); o != outcome {
			t.Fatalf("%s: outcome %q, want %q", label, o, outcome)
		}
		if !bytes.Equal(got, oracle) {
			t.Fatalf("%s: wrong bytes served", label)
		}
	}
	step("A first", bodyA, oracleA, resultMiss)
	step("A repeat", bodyA, oracleA, resultHit)
	step("B collides", bodyB, oracleB, resultMiss) // fingerprint mismatch → replay, takeover
	step("B repeat", bodyB, oracleB, resultHit)
	step("A evicted by takeover", bodyA, oracleA, resultMiss)

	st := rc.Stats()
	if st.Hits != 2 || st.Misses != 3 || st.Stores != 3 {
		t.Fatalf("stats = hits %d misses %d stores %d, want 2/3/3", st.Hits, st.Misses, st.Stores)
	}
}
