// Package serve is the simulation-as-a-service layer: an HTTP JSON API
// over the fused simulation kernel (core.SimulateManyTrace), fronted by a
// byte-budgeted decoded-trace cache with request coalescing and a bounded
// worker pool with backpressure. softcache-served is the daemon binary;
// everything here is importable so tests can spin the whole service on a
// random port in-process.
//
// Endpoints:
//
//	POST /v1/simulate        simulate a config group over one trace
//	POST /v1/simulate/trace  simulate a config group over a streamed trace body
//	POST /v1/sweep           sweep one or two axes over one trace
//	GET  /v1/workloads  list the built-in workloads
//	GET  /healthz       liveness probe
//	GET  /metrics       request/latency/cache counters (Prometheus text)
//
// See docs/SERVE.md for the API reference and capacity knobs.
package serve

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"softcache/internal/cache"
	"softcache/internal/core"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// Request validation limits. The simulator itself accepts any power-of-two
// geometry, but a shared daemon must bound what one request can make it
// allocate or chew on; these are generous multiples of the paper's design
// space (8 KiB cache, 32 B lines) and anything beyond them is rejected
// with 400 rather than attempted.
const (
	// MaxBodyBytes is the default request-body cap (a din upload
	// dominates); Config.MaxBodyBytes overrides it per daemon.
	MaxBodyBytes = 32 << 20
	// MaxConfigs bounds the config group of one simulate request.
	MaxConfigs = 64
	// MaxAxisValues bounds one sweep axis; MaxSweepCells bounds the matrix.
	MaxAxisValues = 128
	MaxSweepCells = 4096

	maxCacheKB   = 1 << 16 // 64 MiB cache
	maxLineBytes = 1 << 12 // 4 KiB lines
	maxVLine     = 1 << 16 // 64 KiB virtual lines
	maxLatency   = 1 << 20
	maxAssoc     = 1 << 10
	maxTimeoutMS = 1 << 31
)

// apiError is a client-visible failure with its HTTP status.
type apiError struct {
	status int
	msg    string
	// retryAfter, when positive, is rendered as a Retry-After header (in
	// seconds) so backpressure rejections tell clients — and the cluster
	// router — when trying again is worthwhile.
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

// write renders the error as the standard JSON body, with the
// Retry-After header when the failure is backpressure.
func (e *apiError) write(w http.ResponseWriter) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeError(w, e.status, e.msg)
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// ConfigSpec selects one cache configuration: a named design point (see
// core.ConfigNames) plus the same overrides softcache-sim exposes as
// flags. A zero override leaves the named design's value in place; vline
// is a pointer because 0 is meaningful there (it disables virtual lines).
type ConfigSpec struct {
	Name    string `json:"name,omitempty"` // default "soft"
	CacheKB int    `json:"cache_kb,omitempty"`
	Line    int    `json:"line,omitempty"`
	VLine   *int   `json:"vline,omitempty"`
	Latency int    `json:"latency,omitempty"`
	Assoc   int    `json:"assoc,omitempty"`
}

// build resolves the spec to a validated core.Config.
func (cs ConfigSpec) build() (core.Config, error) {
	name := cs.Name
	if name == "" {
		name = "soft"
	}
	cfg, err := core.ConfigByName(name)
	if err != nil {
		return core.Config{}, err
	}
	if cs.CacheKB < 0 || cs.CacheKB > maxCacheKB {
		return core.Config{}, fmt.Errorf("cache_kb %d out of range [0, %d]", cs.CacheKB, maxCacheKB)
	}
	if cs.CacheKB > 0 {
		cfg.CacheSize = cs.CacheKB << 10
	}
	if cs.Line < 0 || cs.Line > maxLineBytes {
		return core.Config{}, fmt.Errorf("line %d out of range [0, %d]", cs.Line, maxLineBytes)
	}
	if cs.Line > 0 {
		cfg.LineSize = cs.Line
	}
	if cs.VLine != nil {
		if *cs.VLine < 0 || *cs.VLine > maxVLine {
			return core.Config{}, fmt.Errorf("vline %d out of range [0, %d]", *cs.VLine, maxVLine)
		}
		cfg.VirtualLineSize = *cs.VLine
	}
	if cs.Latency < 0 || cs.Latency > maxLatency {
		return core.Config{}, fmt.Errorf("latency %d out of range [0, %d]", cs.Latency, maxLatency)
	}
	if cs.Latency > 0 {
		cfg = core.WithLatency(cfg, cs.Latency)
	}
	if cs.Assoc < 0 || cs.Assoc > maxAssoc {
		return core.Config{}, fmt.Errorf("assoc %d out of range [0, %d]", cs.Assoc, maxAssoc)
	}
	if cs.Assoc > 0 {
		cfg.Assoc = cs.Assoc
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// traceSelector is the part of a request that names the trace: a built-in
// workload (with scale and seed) or an uploaded din-format trace.
type traceSelector struct {
	Workload string `json:"workload,omitempty"`
	Scale    string `json:"scale,omitempty"` // "test" or "paper" (default)
	Seed     uint64 `json:"seed,omitempty"`  // default 1
	Din      string `json:"din,omitempty"`   // classic Dinero text trace
}

// plan resolves the selector to a cache key and loader. Workload existence
// and scale are validated here, before the request is admitted to the
// pool; loader failures (a malformed din body) surface as *apiError too so
// the handler can map them to 400.
func (ts traceSelector) plan() (key string, load func() (*trace.Trace, error), err error) {
	seed := ts.Seed
	if seed == 0 {
		seed = 1
	}
	switch {
	case ts.Workload != "" && ts.Din != "":
		return "", nil, badRequest("workload and din are mutually exclusive")
	case ts.Din != "":
		if ts.Scale != "" {
			return "", nil, badRequest("scale applies only to built-in workloads")
		}
		sum := sha256.Sum256([]byte(ts.Din))
		key = fmt.Sprintf("din:%x", sum[:12])
		din := ts.Din
		return key, func() (*trace.Trace, error) {
			t, err := trace.ReadDin(strings.NewReader(din), "din")
			if err != nil {
				return nil, badRequest("%v", err)
			}
			return t, nil
		}, nil
	case ts.Workload != "":
		scale := workloads.ScalePaper
		switch ts.Scale {
		case "", "paper":
		case "test":
			scale = workloads.ScaleTest
		default:
			return "", nil, badRequest("unknown scale %q (want test or paper)", ts.Scale)
		}
		if _, err := workloads.Get(ts.Workload); err != nil {
			return "", nil, badRequest("%v", err)
		}
		name, sc := ts.Workload, scale
		key = fmt.Sprintf("workload:%s:%s:%d", name, sc, seed)
		return key, func() (*trace.Trace, error) { return workloads.Trace(name, sc, seed) }, nil
	default:
		return "", nil, badRequest("need workload or din")
	}
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	traceSelector
	Configs   []ConfigSpec `json:"configs"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// simPlan is a validated simulate request, ready to execute.
type simPlan struct {
	traceKey string
	load     func() (*trace.Trace, error)
	cfgs     []core.Config
	descs    []string
	timeout  int64
}

// validate turns the request into an executable plan or a 400.
func (req *SimulateRequest) validate() (*simPlan, *apiError) {
	if len(req.Configs) == 0 {
		return nil, badRequest("need at least one config")
	}
	if len(req.Configs) > MaxConfigs {
		return nil, badRequest("%d configs exceed the per-request limit %d", len(req.Configs), MaxConfigs)
	}
	if req.TimeoutMS < 0 || req.TimeoutMS > maxTimeoutMS {
		return nil, badRequest("timeout_ms %d out of range [0, %d]", req.TimeoutMS, maxTimeoutMS)
	}
	key, load, err := req.plan()
	if err != nil {
		return nil, asAPIError(err)
	}
	p := &simPlan{traceKey: key, load: load, timeout: req.TimeoutMS}
	for i, cs := range req.Configs {
		cfg, err := cs.build()
		if err != nil {
			return nil, badRequest("config %d: %v", i, err)
		}
		p.cfgs = append(p.cfgs, cfg)
		p.descs = append(p.descs, core.Describe(cfg))
	}
	return p, nil
}

// SweepRequest is the body of POST /v1/sweep: the service face of
// softcache-sweep, with the same axis grammar ("key=v1,v2,...").
type SweepRequest struct {
	traceSelector
	Config    string `json:"config,omitempty"` // base config name, default "soft"
	X         string `json:"x"`
	Y         string `json:"y,omitempty"`
	Metric    string `json:"metric,omitempty"` // amat (default), miss, traffic
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// sweepPlan is a validated sweep request: one config group per matrix row,
// each row simulated in a single fused trace pass.
type sweepPlan struct {
	traceKey string
	load     func() (*trace.Trace, error)
	metric   string
	xAxis    core.Axis
	yAxis    core.Axis // Key == "" for one-dimensional sweeps
	rows     [][]core.Config
	rowDescs [][]string
	timeout  int64
}

func (req *SweepRequest) validate() (*sweepPlan, *apiError) {
	if req.TimeoutMS < 0 || req.TimeoutMS > maxTimeoutMS {
		return nil, badRequest("timeout_ms %d out of range [0, %d]", req.TimeoutMS, maxTimeoutMS)
	}
	if req.X == "" {
		return nil, badRequest("x axis is required")
	}
	xAxis, err := core.ParseAxis(req.X)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	yAxis := core.Axis{Values: []int{0}}
	if req.Y != "" {
		if yAxis, err = core.ParseAxis(req.Y); err != nil {
			return nil, badRequest("%v", err)
		}
		if yAxis.Key == xAxis.Key {
			return nil, badRequest("x and y sweep the same axis %q", xAxis.Key)
		}
	}
	if len(xAxis.Values) > MaxAxisValues || len(yAxis.Values) > MaxAxisValues {
		return nil, badRequest("axis exceeds %d values", MaxAxisValues)
	}
	if len(xAxis.Values)*len(yAxis.Values) > MaxSweepCells {
		return nil, badRequest("sweep exceeds %d cells", MaxSweepCells)
	}
	metric := req.Metric
	if metric == "" {
		metric = "amat"
	}
	if _, err := core.MetricOf(metric, core.Result{}); err != nil {
		return nil, badRequest("%v", err)
	}
	baseName := req.Config
	if baseName == "" {
		baseName = "soft"
	}
	base, err := core.ConfigByName(baseName)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	key, load, terr := req.plan()
	if terr != nil {
		return nil, asAPIError(terr)
	}
	p := &sweepPlan{traceKey: key, load: load, metric: metric, xAxis: xAxis, yAxis: yAxis, timeout: req.TimeoutMS}
	for _, y := range yAxis.Values {
		rowBase := base
		if yAxis.Key != "" {
			if rowBase, err = core.ApplyAxis(rowBase, yAxis.Key, y); err != nil {
				return nil, badRequest("%v", err)
			}
		}
		cfgs := make([]core.Config, len(xAxis.Values))
		descs := make([]string, len(xAxis.Values))
		for i, x := range xAxis.Values {
			cfg, err := core.ApplyAxis(rowBase, xAxis.Key, x)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			if cfg.CacheSize > maxCacheKB<<10 || cfg.LineSize > maxLineBytes ||
				cfg.VirtualLineSize > maxVLine || cfg.Memory.LatencyCycles > maxLatency || cfg.Assoc > maxAssoc {
				return nil, badRequest("cell %s=%d,%s=%d: geometry exceeds the service limits", xAxis.Key, x, yAxis.Key, y)
			}
			if err := cfg.Validate(); err != nil {
				return nil, badRequest("cell %s=%d: %v", xAxis.Key, x, err)
			}
			cfgs[i] = cfg
			descs[i] = core.Describe(cfg)
		}
		p.rows = append(p.rows, cfgs)
		p.rowDescs = append(p.rowDescs, descs)
	}
	return p, nil
}

// asAPIError converts any error to an apiError, defaulting to 400 (every
// error produced during request validation is the client's).
func asAPIError(err error) *apiError {
	if ae, ok := err.(*apiError); ok {
		return ae
	}
	return badRequest("%v", err)
}

// ConfigResult is the per-configuration payload of a simulate response.
type ConfigResult struct {
	Config      string      `json:"config"`
	AMAT        float64     `json:"amat"`
	MissRatio   float64     `json:"miss_ratio"`
	WordsPerRef float64     `json:"words_per_reference"`
	Stats       cache.Stats `json:"stats"`
}

// SimulateResponse is the body of a successful POST /v1/simulate.
type SimulateResponse struct {
	Trace      string         `json:"trace"`
	References uint64         `json:"references"`
	Results    []ConfigResult `json:"results"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Trace   string      `json:"trace"`
	Metric  string      `json:"metric"`
	XKey    string      `json:"x_key"`
	XValues []int       `json:"x_values"`
	YKey    string      `json:"y_key,omitempty"`
	YValues []int       `json:"y_values,omitempty"`
	Rows    [][]float64 `json:"rows"`
}

// WorkloadInfo is one entry of the GET /v1/workloads listing.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Kernel      bool   `json:"kernel,omitempty"`
}

// WorkloadsResponse is the body of GET /v1/workloads.
type WorkloadsResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
	Scales    []string       `json:"scales"`
	Configs   []string       `json:"configs"`
}

// RoutingKey derives the stable trace identity of a simulate or sweep
// request body without validating the rest of it: the same key the
// shards' trace caches use (workload:NAME:SCALE:SEED, or a content hash
// of a din upload), which is exactly what pins a decoded trace — the
// identity trace.Fingerprint captures — to one replica's cache. The
// cluster router consistent-hashes on it; a body whose selector cannot
// be resolved returns an error and the router falls back to hashing the
// whole body, leaving the authoritative 400 to a shard.
func RoutingKey(body []byte) (string, error) {
	var sel traceSelector
	if err := json.Unmarshal(body, &sel); err != nil {
		return "", err
	}
	key, _, err := sel.plan()
	if err != nil {
		return "", err
	}
	return key, nil
}

// decodeRequest strictly decodes one JSON request body into dst: unknown
// fields, trailing garbage and oversized bodies are all client errors.
func decodeRequest(r *http.Request, dst any, maxBody int64) *apiError {
	body := http.MaxBytesReader(nil, r.Body, maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", maxBody),
			}
		}
		return badRequest("decoding request: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return badRequest("trailing data after request body")
	}
	return nil
}
