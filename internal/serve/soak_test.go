package serve

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeSoak drives a deliberately undersized server (2 workers, queue
// of 2, minimum cache budget so traces evict constantly) with a randomized
// mix of workloads, seeds, invalid requests and client-side cancellations,
// and checks the daemon stays coherent: every response is one of the
// designed statuses, nothing panics, and the counters still add up.
// Randomization is seeded per run but the seed is logged for replay.
func TestServeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	s, ts := newTestServer(t, Config{
		Workers:    2,
		QueueDepth: 2,
		CacheBytes: 1, // raised to the 1 MiB floor: constant eviction churn
	})

	seed := time.Now().UnixNano()
	t.Logf("soak seed %d", seed)

	workloadsPool := []string{"MV", "SpMV", "LIV"}
	const clients = 8
	const requestsPerClient = 25

	var wg sync.WaitGroup
	statuses := make(chan int, clients*requestsPerClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < requestsPerClient; i++ {
				var body string
				switch rng.Intn(10) {
				case 0: // malformed request
					body = `{"workload":` + fmt.Sprint(rng.Intn(100)) + `}`
				case 1: // unknown workload
					body = `{"workload":"missing","configs":[{}]}`
				default:
					w := workloadsPool[rng.Intn(len(workloadsPool))]
					cfgs := []string{`{"name":"soft"}`, `{"name":"standard"}`, `{"name":"victim"}`}
					n := 1 + rng.Intn(3)
					body = fmt.Sprintf(`{"workload":%q,"scale":"test","seed":%d,"configs":[%s]}`,
						w, 1+rng.Intn(3), strings.Join(cfgs[:n], ","))
				}

				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(8) == 0 {
					// An impatient client: cancel quickly, sometimes mid-run.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", strings.NewReader(body))
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					statuses <- resp.StatusCode
				} else {
					statuses <- 0 // client-side cancel
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	close(statuses)

	counts := map[int]int{}
	for st := range statuses {
		switch st {
		case 0, 200, 400, 429, 504:
			counts[st]++
		default:
			t.Fatalf("unexpected status %d under load", st)
		}
	}
	t.Logf("status counts: %v", counts)
	if counts[200] == 0 {
		t.Fatal("soak produced no successful responses")
	}

	// The server must still be fully serviceable after the storm.
	code, body := post(t, ts.URL+"/v1/simulate",
		`{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`)
	if code != 200 {
		t.Fatalf("post-soak simulate: %d %s", code, body)
	}
	code, mb := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("post-soak metrics: %d", code)
	}
	if v := metricValue(t, string(mb), "softcache_inflight_requests"); v != 0 {
		t.Fatalf("inflight gauge %v after drain, want 0", v)
	}
	if v := metricValue(t, string(mb), "softcache_queued_requests"); v != 0 {
		t.Fatalf("queued gauge %v after drain, want 0", v)
	}

	// Byte accounting must have survived the eviction churn.
	s.traces.mu.Lock()
	var sum int64
	for e := s.traces.ll.Front(); e != nil; e = e.Next() {
		sum += e.Value.(*traceEntry).bytes
	}
	used := s.traces.used
	s.traces.mu.Unlock()
	if sum != used {
		t.Fatalf("cache byte accounting drifted: sum=%d used=%d", sum, used)
	}
}
