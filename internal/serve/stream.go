package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/trace"
)

// POST /v1/simulate/trace is the streaming face of /v1/simulate: the body
// IS the trace (flat SCTR, compressed SCTZ, or din text — sniffed, like
// every other trace entry point), the config group rides in query
// parameters, and the records flow from the socket through the fused
// kernel in pooled batches. Nothing is materialised and nothing is
// cached, so the endpoint is exempt from MaxBodyBytes: the bound that
// matters for a stream is records decoded, which Config.MaxTraceRecords
// caps (softcache-served's -max-trace-records flag). A multi-gigabyte
// capture simulates in O(batch) memory.

// StreamKeyPrefix is how many leading body bytes StreamRoutingKey
// fingerprints. The cluster router cannot buffer a streamed body to
// derive its routing key the way it does for JSON requests, so shard
// affinity hangs off a bounded prefix: 64 KiB covers the header plus the
// first chunks of any real capture, which is as identity-stable as a
// whole-body hash for streams that are re-uploads of the same trace.
const StreamKeyPrefix = 64 << 10

// StreamRoutingKey derives the consistent-hash key for a streamed trace
// body from its bounded prefix (up to StreamKeyPrefix bytes). It is the
// streaming analogue of RoutingKey: same trace bytes, same key, same
// home shard — even though no shard caches the stream, affinity keeps a
// re-uploaded trace's load on one replica instead of spraying the fleet.
func StreamRoutingKey(prefix []byte) string {
	if len(prefix) > StreamKeyPrefix {
		prefix = prefix[:StreamKeyPrefix]
	}
	sum := sha256.Sum256(prefix)
	return fmt.Sprintf("stream:%x", sum[:12])
}

// budgetReader enforces the daemon's record budget over any trace
// format and tallies what streams past: cumulative record count (the
// response's references field), tag classes (the text report needs
// them), and the daemon-wide decode counter. The budget is cumulative
// across the whole body — chunked formats cannot dodge it by announcing
// small pieces — and exceeding it poisons the reader with ErrTooLarge.
type budgetReader struct {
	inner  trace.BatchReader
	budget int64
	read   atomic.Int64 // written by the simulation goroutine, read after it finishes
	tags   trace.TagCounts
	err    error
}

func (r *budgetReader) Name() string { return r.inner.Name() }
func (r *budgetReader) Len() int     { return r.inner.Len() }

func (r *budgetReader) ReadBatch(dst []trace.Record) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := r.inner.ReadBatch(dst)
	read := r.read.Add(int64(n))
	r.tags.AddRecords(dst[:n])
	if read > r.budget {
		r.err = fmt.Errorf("%w: body exceeds the %d-record budget", trace.ErrTooLarge, r.budget)
		return n, r.err
	}
	return n, err
}

// streamPlan is a validated /v1/simulate/trace query string.
type streamPlan struct {
	cfgs    []core.Config
	descs   []string
	timeout int64
	format  string
}

// parseStreamQuery validates the query parameters of a streamed simulate
// request. The grammar mirrors the JSON ConfigSpec: config may repeat
// (one result per name, same order), and the numeric overrides apply to
// every named config, exactly like softcache-sim's flags.
func parseStreamQuery(q url.Values) (*streamPlan, *apiError) {
	known := map[string]bool{
		"config": true, "cache_kb": true, "line": true, "vline": true,
		"latency": true, "assoc": true, "timeout_ms": true, "format": true,
	}
	for k := range q {
		if !known[k] {
			return nil, badRequest("unknown query parameter %q", k)
		}
	}
	intParam := func(key string) (int, *apiError) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, badRequest("query parameter %s=%q is not an integer", key, v)
		}
		return n, nil
	}
	spec := ConfigSpec{}
	var aerr *apiError
	if spec.CacheKB, aerr = intParam("cache_kb"); aerr != nil {
		return nil, aerr
	}
	if spec.Line, aerr = intParam("line"); aerr != nil {
		return nil, aerr
	}
	if q.Get("vline") != "" {
		v, aerr := intParam("vline")
		if aerr != nil {
			return nil, aerr
		}
		spec.VLine = &v
	}
	if spec.Latency, aerr = intParam("latency"); aerr != nil {
		return nil, aerr
	}
	if spec.Assoc, aerr = intParam("assoc"); aerr != nil {
		return nil, aerr
	}
	timeoutMS, aerr := intParam("timeout_ms")
	if aerr != nil {
		return nil, aerr
	}
	if timeoutMS < 0 || int64(timeoutMS) > maxTimeoutMS {
		return nil, badRequest("timeout_ms %d out of range [0, %d]", timeoutMS, maxTimeoutMS)
	}
	format := q.Get("format")
	if format != "" && format != "json" && format != "text" {
		return nil, badRequest("unknown format %q (want json or text)", format)
	}

	names := q["config"]
	if len(names) == 0 {
		names = []string{"soft"}
	}
	if len(names) > MaxConfigs {
		return nil, badRequest("%d configs exceed the per-request limit %d", len(names), MaxConfigs)
	}
	p := &streamPlan{timeout: int64(timeoutMS), format: format}
	for i, name := range names {
		cs := spec
		cs.Name = name
		cfg, err := cs.build()
		if err != nil {
			return nil, badRequest("config %d: %v", i, err)
		}
		p.cfgs = append(p.cfgs, cfg)
		p.descs = append(p.descs, core.Describe(cfg))
	}
	return p, nil
}

// streamBodyError maps a streaming simulate failure to its HTTP status.
// Every error out of the decode-simulate loop is the body's fault — the
// configs were validated before a byte was read — so the default is 400,
// with the record budget surfacing as 413 like the JSON body cap does.
func streamBodyError(err error) *apiError {
	if errors.Is(err, trace.ErrTooLarge) {
		return &apiError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
	}
	return badRequest("%v", err)
}

// hashingReader tees everything read through it into a SHA-256, so the
// stream's content fingerprint falls out of the decode pass for free.
type hashingReader struct {
	r io.Reader
	h hash.Hash
}

func newHashingReader(r io.Reader) *hashingReader {
	return &hashingReader{r: r, h: sha256.New()}
}

func (hr *hashingReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	hr.h.Write(p[:n])
	return n, err
}

func (hr *hashingReader) sum() string { return hex.EncodeToString(hr.h.Sum(nil)) }

// fingerprintHexLen is the length of a hex-encoded stream fingerprint,
// which prefixes every cached stream envelope.
const fingerprintHexLen = sha256.Size * 2

// streamEnvelope is the cached value for a streamed upload: the full-body
// fingerprint (fixed-width hex) followed by the rendered response. The
// entry is keyed by the body's bounded *prefix* (the same identity the
// router shards on), so a lookup needs no decode — the embedded full
// fingerprint then disambiguates genuine repeats from prefix collisions.
func streamEnvelope(fp string, body []byte) []byte {
	env := make([]byte, 0, len(fp)+len(body))
	return append(append(env, fp...), body...)
}

func parseStreamEnvelope(env []byte) (fp string, body []byte, ok bool) {
	if len(env) < fingerprintHexLen {
		return "", nil, false
	}
	return string(env[:fingerprintHexLen]), env[fingerprintHexLen:], true
}

// maxSpoolBytes caps the temp-file spool used to verify a candidate
// repeat upload. The cap exists because raw bytes are spooled before any
// record accounting can happen; an upload past it is rejected with 413
// exactly like one past the record budget.
const maxSpoolBytes = 16 << 30

// spoolStreamBody drains the request body (prefix already read plus the
// rest) into an unlinked temp file while hashing it, returning the
// replayable spool and the full-body fingerprint. The caller closes the
// spool; the file itself is already removed.
func spoolStreamBody(prefix []byte, rest io.Reader) (*os.File, string, *apiError) {
	f, err := os.CreateTemp("", "softcache-stream-")
	if err != nil {
		return nil, "", &apiError{status: http.StatusInternalServerError, msg: fmt.Sprintf("spooling stream: %v", err)}
	}
	os.Remove(f.Name()) // anonymous: the descriptor is the only reference
	h := sha256.New()
	mw := io.MultiWriter(f, h)
	fail := func(aerr *apiError) (*os.File, string, *apiError) {
		f.Close()
		return nil, "", aerr
	}
	if _, err := mw.Write(prefix); err != nil {
		return fail(&apiError{status: http.StatusInternalServerError, msg: fmt.Sprintf("spooling stream: %v", err)})
	}
	n, err := io.Copy(mw, io.LimitReader(rest, maxSpoolBytes-int64(len(prefix))+1))
	if err != nil {
		return fail(badRequest("reading request body: %v", err))
	}
	if int64(len(prefix))+n > maxSpoolBytes {
		return fail(&apiError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("stream body exceeds the %d-byte spool limit", int64(maxSpoolBytes))})
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fail(&apiError{status: http.StatusInternalServerError, msg: fmt.Sprintf("spooling stream: %v", err)})
	}
	return f, hex.EncodeToString(h.Sum(nil)), nil
}

// streamSimulate decodes a trace body from r and runs the fused kernel
// over it, returning the rendered response body. Decode accounting is
// committed whether the run succeeds or not: a stream that fails
// mid-body still decoded its records and chunks.
func (s *Server) streamSimulate(rctx context.Context, plan *streamPlan, body io.Reader, deadline time.Time) ([]byte, *apiError) {
	// The header sniff happens inside the worker slot: it is the first
	// read of a body that may still be crossing the network.
	br, err := trace.NewAnyReader(body, "upload")
	if err != nil {
		return nil, streamBodyError(err)
	}
	rd := &budgetReader{inner: br, budget: s.cfg.MaxTraceRecords}
	defer func() {
		s.met.traceRecords.Add(uint64(rd.read.Load()))
		if sr, ok := br.(*trace.StreamReader); ok {
			s.met.traceChunks.Add(sr.Chunks())
		}
	}()

	results, aerr := s.runFused(rctx, deadline, "stream:"+rd.Name(), plan.descs,
		func(runCtx context.Context) ([]core.Result, error) {
			return core.SimulateMany(runCtx, plan.cfgs, rd)
		}, streamBodyError)
	if aerr != nil {
		return nil, aerr
	}

	if plan.format == "text" {
		var buf bytes.Buffer
		for i, res := range results {
			if i > 0 {
				buf.WriteByte('\n')
			}
			metrics.SimulationReport(&buf, rd.tags, res)
		}
		return buf.Bytes(), nil
	}
	resp := SimulateResponse{Trace: rd.Name(), References: uint64(rd.read.Load())}
	for _, res := range results {
		resp.Results = append(resp.Results, ConfigResult{
			Config:      res.Config,
			AMAT:        res.AMAT(),
			MissRatio:   res.MissRatio(),
			WordsPerRef: res.Stats.WordsPerReference(),
			Stats:       res.Stats,
		})
	}
	return encodeJSON(resp), nil
}

func (s *Server) handleSimulateTrace(w http.ResponseWriter, r *http.Request) {
	plan, aerr := parseStreamQuery(r.URL.Query())
	if aerr != nil {
		aerr.write(w)
		return
	}

	release, aerr := s.admit(r.Context())
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}
	defer release()

	deadline := time.Now().Add(s.timeoutFor(plan.timeout))

	if s.results == nil {
		// No result cache: decode straight off the socket, hashing as it
		// streams so the response still carries the upload's identity.
		hr := newHashingReader(r.Body)
		body, aerr := s.streamSimulate(r.Context(), plan, hr, deadline)
		if aerr != nil {
			if aerr.status != 499 {
				aerr.write(w)
			}
			return
		}
		io.Copy(io.Discard, hr) // any undecoded trailing bytes are identity too
		w.Header().Set(TraceFingerprintHeader, hr.sum())
		writeResult(w, plan.format, body, "")
		return
	}
	s.handleStreamCached(w, r, plan, deadline)
}

// handleStreamCached is the streamed-simulate path with a result cache:
// identical uploads become lookups instead of re-decodes. The cache entry
// is keyed by the body's bounded prefix (the router's stream identity);
// on a candidate hit the body is spooled — not decoded — and served from
// cache when its full fingerprint matches the stored one. A prefix
// collision replays the spool through the kernel, so a lookup can cost a
// spool but never a wrong answer. Each request counts exactly one hit or
// miss (via Peek + Hit/Miss — streams cannot coalesce through Do because
// every request owns its own body).
func (s *Server) handleStreamCached(w http.ResponseWriter, r *http.Request, plan *streamPlan, deadline time.Time) {
	cfgKey := canonicalConfigs(plan.cfgs)
	prefix := make([]byte, StreamKeyPrefix)
	n, err := io.ReadFull(r.Body, prefix)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		badRequest("reading request body: %v", err).write(w)
		return
	}
	prefix = prefix[:n]
	pkey := s.resultKey("stream", StreamRoutingKey(prefix), cfgKey, plan.format)

	if env, ok := s.results.Peek(pkey); ok {
		if storedFP, cached, ok := parseStreamEnvelope(env); ok {
			spool, fullFP, aerr := spoolStreamBody(prefix, r.Body)
			if aerr != nil {
				aerr.write(w)
				return
			}
			defer spool.Close()
			if fullFP == storedFP {
				s.results.Hit()
				w.Header().Set(TraceFingerprintHeader, fullFP)
				writeResult(w, plan.format, cached, resultHit)
				return
			}
			// Same prefix, different body: replay the spool through the
			// kernel. The newest upload takes over the prefix slot.
			s.results.Miss()
			body, aerr := s.streamSimulate(r.Context(), plan, spool, deadline)
			if aerr != nil {
				if aerr.status != 499 {
					aerr.write(w)
				}
				return
			}
			s.results.Put(pkey, streamEnvelope(fullFP, body))
			w.Header().Set(TraceFingerprintHeader, fullFP)
			writeResult(w, plan.format, body, resultMiss)
			return
		}
	}

	// First sighting of this prefix: decode straight off the socket with
	// a tee hash, then store the rendered body under the prefix key.
	s.results.Miss()
	hr := newHashingReader(io.MultiReader(bytes.NewReader(prefix), r.Body))
	body, aerr := s.streamSimulate(r.Context(), plan, hr, deadline)
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}
	io.Copy(io.Discard, hr)
	fullFP := hr.sum()
	s.results.Put(pkey, streamEnvelope(fullFP, body))
	w.Header().Set(TraceFingerprintHeader, fullFP)
	writeResult(w, plan.format, body, resultMiss)
}
