package serve

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/trace"
)

// POST /v1/simulate/trace is the streaming face of /v1/simulate: the body
// IS the trace (flat SCTR, compressed SCTZ, or din text — sniffed, like
// every other trace entry point), the config group rides in query
// parameters, and the records flow from the socket through the fused
// kernel in pooled batches. Nothing is materialised and nothing is
// cached, so the endpoint is exempt from MaxBodyBytes: the bound that
// matters for a stream is records decoded, which Config.MaxTraceRecords
// caps (softcache-served's -max-trace-records flag). A multi-gigabyte
// capture simulates in O(batch) memory.

// StreamKeyPrefix is how many leading body bytes StreamRoutingKey
// fingerprints. The cluster router cannot buffer a streamed body to
// derive its routing key the way it does for JSON requests, so shard
// affinity hangs off a bounded prefix: 64 KiB covers the header plus the
// first chunks of any real capture, which is as identity-stable as a
// whole-body hash for streams that are re-uploads of the same trace.
const StreamKeyPrefix = 64 << 10

// StreamRoutingKey derives the consistent-hash key for a streamed trace
// body from its bounded prefix (up to StreamKeyPrefix bytes). It is the
// streaming analogue of RoutingKey: same trace bytes, same key, same
// home shard — even though no shard caches the stream, affinity keeps a
// re-uploaded trace's load on one replica instead of spraying the fleet.
func StreamRoutingKey(prefix []byte) string {
	if len(prefix) > StreamKeyPrefix {
		prefix = prefix[:StreamKeyPrefix]
	}
	sum := sha256.Sum256(prefix)
	return fmt.Sprintf("stream:%x", sum[:12])
}

// budgetReader enforces the daemon's record budget over any trace
// format and tallies what streams past: cumulative record count (the
// response's references field), tag classes (the text report needs
// them), and the daemon-wide decode counter. The budget is cumulative
// across the whole body — chunked formats cannot dodge it by announcing
// small pieces — and exceeding it poisons the reader with ErrTooLarge.
type budgetReader struct {
	inner  trace.BatchReader
	budget int64
	read   atomic.Int64 // written by the simulation goroutine, read after it finishes
	tags   trace.TagCounts
	err    error
}

func (r *budgetReader) Name() string { return r.inner.Name() }
func (r *budgetReader) Len() int     { return r.inner.Len() }

func (r *budgetReader) ReadBatch(dst []trace.Record) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := r.inner.ReadBatch(dst)
	read := r.read.Add(int64(n))
	r.tags.AddRecords(dst[:n])
	if read > r.budget {
		r.err = fmt.Errorf("%w: body exceeds the %d-record budget", trace.ErrTooLarge, r.budget)
		return n, r.err
	}
	return n, err
}

// streamPlan is a validated /v1/simulate/trace query string.
type streamPlan struct {
	cfgs    []core.Config
	descs   []string
	timeout int64
	format  string
}

// parseStreamQuery validates the query parameters of a streamed simulate
// request. The grammar mirrors the JSON ConfigSpec: config may repeat
// (one result per name, same order), and the numeric overrides apply to
// every named config, exactly like softcache-sim's flags.
func parseStreamQuery(q url.Values) (*streamPlan, *apiError) {
	known := map[string]bool{
		"config": true, "cache_kb": true, "line": true, "vline": true,
		"latency": true, "assoc": true, "timeout_ms": true, "format": true,
	}
	for k := range q {
		if !known[k] {
			return nil, badRequest("unknown query parameter %q", k)
		}
	}
	intParam := func(key string) (int, *apiError) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, badRequest("query parameter %s=%q is not an integer", key, v)
		}
		return n, nil
	}
	spec := ConfigSpec{}
	var aerr *apiError
	if spec.CacheKB, aerr = intParam("cache_kb"); aerr != nil {
		return nil, aerr
	}
	if spec.Line, aerr = intParam("line"); aerr != nil {
		return nil, aerr
	}
	if q.Get("vline") != "" {
		v, aerr := intParam("vline")
		if aerr != nil {
			return nil, aerr
		}
		spec.VLine = &v
	}
	if spec.Latency, aerr = intParam("latency"); aerr != nil {
		return nil, aerr
	}
	if spec.Assoc, aerr = intParam("assoc"); aerr != nil {
		return nil, aerr
	}
	timeoutMS, aerr := intParam("timeout_ms")
	if aerr != nil {
		return nil, aerr
	}
	if timeoutMS < 0 || int64(timeoutMS) > maxTimeoutMS {
		return nil, badRequest("timeout_ms %d out of range [0, %d]", timeoutMS, maxTimeoutMS)
	}
	format := q.Get("format")
	if format != "" && format != "json" && format != "text" {
		return nil, badRequest("unknown format %q (want json or text)", format)
	}

	names := q["config"]
	if len(names) == 0 {
		names = []string{"soft"}
	}
	if len(names) > MaxConfigs {
		return nil, badRequest("%d configs exceed the per-request limit %d", len(names), MaxConfigs)
	}
	p := &streamPlan{timeout: int64(timeoutMS), format: format}
	for i, name := range names {
		cs := spec
		cs.Name = name
		cfg, err := cs.build()
		if err != nil {
			return nil, badRequest("config %d: %v", i, err)
		}
		p.cfgs = append(p.cfgs, cfg)
		p.descs = append(p.descs, core.Describe(cfg))
	}
	return p, nil
}

// streamBodyError maps a streaming simulate failure to its HTTP status.
// Every error out of the decode-simulate loop is the body's fault — the
// configs were validated before a byte was read — so the default is 400,
// with the record budget surfacing as 413 like the JSON body cap does.
func streamBodyError(err error) *apiError {
	if errors.Is(err, trace.ErrTooLarge) {
		return &apiError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
	}
	return badRequest("%v", err)
}

func (s *Server) handleSimulateTrace(w http.ResponseWriter, r *http.Request) {
	plan, aerr := parseStreamQuery(r.URL.Query())
	if aerr != nil {
		aerr.write(w)
		return
	}

	release, aerr := s.admit(r.Context())
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}
	defer release()

	// The header sniff happens inside the worker slot: it is the first
	// read of a body that may still be crossing the network.
	br, err := trace.NewAnyReader(r.Body, "upload")
	if err != nil {
		streamBodyError(err).write(w)
		return
	}
	rd := &budgetReader{inner: br, budget: s.cfg.MaxTraceRecords}
	// Decode accounting is committed whether the run succeeds or not: a
	// stream that fails mid-body still decoded its records and chunks.
	defer func() {
		s.met.traceRecords.Add(uint64(rd.read.Load()))
		if sr, ok := br.(*trace.StreamReader); ok {
			s.met.traceChunks.Add(sr.Chunks())
		}
	}()

	deadline := time.Now().Add(s.timeoutFor(plan.timeout))
	results, aerr := s.runFused(r.Context(), deadline, "stream:"+rd.Name(), plan.descs,
		func(runCtx context.Context) ([]core.Result, error) {
			return core.SimulateMany(runCtx, plan.cfgs, rd)
		}, streamBodyError)
	if aerr != nil {
		if aerr.status != 499 {
			aerr.write(w)
		}
		return
	}

	if plan.format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for i, res := range results {
			if i > 0 {
				fmt.Fprintln(w)
			}
			metrics.SimulationReport(w, rd.tags, res)
		}
		return
	}
	resp := SimulateResponse{Trace: rd.Name(), References: uint64(rd.read.Load())}
	for _, res := range results {
		resp.Results = append(resp.Results, ConfigResult{
			Config:      res.Config,
			AMAT:        res.AMAT(),
			MissRatio:   res.MissRatio(),
			WordsPerRef: res.Stats.WordsPerReference(),
			Stats:       res.Stats,
		})
	}
	writeJSON(w, resp)
}
