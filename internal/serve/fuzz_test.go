package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzSimulateRequest fuzzes the JSON request decoder and config/axis
// validation of both POST endpoints: arbitrary bodies must produce either
// a valid plan or a client error — never a panic. (Execution is not
// fuzzed; planning is where untrusted input is interpreted.)
func FuzzSimulateRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json at all`,
		`{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`,
		`{"workload":"MV","configs":[{"name":"soft","vline":0}]}`,
		`{"din":"0 1000\n1 2000\n","configs":[{}]}`,
		`{"din":"2 1000\n","configs":[{}]}`,
		`{"workload":"MV","configs":[{"cache_kb":0,"line":0,"assoc":0}]}`,
		`{"workload":"MV","configs":[{"cache_kb":-8}]}`,
		`{"workload":"MV","configs":[{"cache_kb":1e309}]}`,
		`{"workload":"MV","configs":[{"cache_kb":NaN}]}`,
		`{"workload":"MV","configs":[{"latency":1073741824}]}`,
		`{"workload":"MV","configs":[{"assoc":3,"line":48}]}`,
		`{"workload":"MV","configs":[{"vline":-1}]}`,
		`{"workload":"MV","timeout_ms":-9223372036854775808,"configs":[{}]}`,
		"{\"workload\":\"\u0000\",\"configs\":[{}]}",
		`{"x":"cache=4,8","workload":"MV"}`,
		`{"x":"cache=4,8","y":"cache=4","workload":"MV"}`,
		`{"x":"cache=","workload":"MV"}`,
		`{"x":"=4","workload":"MV"}`,
		`{"x":"cache=99999999999999999999","workload":"MV"}`,
		`{"x":"vline=0,0","workload":"MV"}`,
		`{"x":"cache=4","metric":"amat","config":"soft","workload":"MV","y":"bb=0,4"}`,
		`{"workload":"MV","configs":[` + strings.Repeat(`{},`, 64) + `{}]}`,
		"{\"workload\":\"MV\",\"configs\":[{}]}garbage",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		// Simulate planning path.
		r := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(body))
		var sim SimulateRequest
		if aerr := decodeRequest(r, &sim, MaxBodyBytes); aerr == nil {
			if plan, aerr := sim.validate(); aerr == nil {
				// The trace loader interprets untrusted din bytes: it must
				// fail cleanly, never panic. (Workload loads hit the
				// generator, which is trusted and slow — skip those.)
				if strings.HasPrefix(plan.traceKey, "din:") {
					plan.load()
				}
			}
		}
		// Sweep planning path over the same bytes.
		r = httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
		var sw SweepRequest
		if aerr := decodeRequest(r, &sw, MaxBodyBytes); aerr == nil {
			sw.validate()
		}
	})
}
