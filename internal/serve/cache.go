package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"unsafe"

	"softcache/internal/trace"
)

// recordMemBytes is the in-memory footprint of one decoded trace record,
// the unit the cache's byte budget is accounted in.
const recordMemBytes = int64(unsafe.Sizeof(trace.Record{}))

// entryOverheadBytes approximates the fixed per-entry cost (map slot, list
// element, entry struct, trace header) so a flood of tiny traces cannot
// slip under the budget for free.
const entryOverheadBytes = 256

// TraceCache is the daemon's decoded-trace store: an LRU cache with a byte
// budget that also coalesces concurrent loads of the same key. The first
// request for a key decodes (or generates) the trace; every request that
// arrives while that load is in flight blocks on the same entry and shares
// the result, so N concurrent requests for one workload cost exactly one
// decode — the property the service E2E tests pin via the hit/decode
// counters.
//
// Loads that fail are not cached: the error is delivered to every
// coalesced waiter, the entry is removed, and the next request retries.
// Eviction only considers completed entries (an in-flight load has unknown
// size and active waiters) and always keeps the most recently used entry
// resident, so a single trace larger than the whole budget still serves
// requests instead of thrashing on every call.
type TraceCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64                  // guarded by mu
	ll      *list.List             // guarded by mu; front = most recently used; completed entries only
	entries map[string]*traceEntry // guarded by mu

	hits         atomic.Uint64
	misses       atomic.Uint64
	decodes      atomic.Uint64
	evictions    atomic.Uint64
	loadFailures atomic.Uint64
}

type traceEntry struct {
	key   string
	ready chan struct{} // closed once tr/err are set
	tr    *trace.Trace
	err   error
	bytes int64
	elem  *list.Element // nil while the load is in flight
}

// NewTraceCache returns a cache with the given byte budget (values below
// 1 MiB are raised to 1 MiB so a misconfigured budget cannot disable
// caching entirely).
func NewTraceCache(budget int64) *TraceCache {
	if budget < 1<<20 {
		budget = 1 << 20
	}
	return &TraceCache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[string]*traceEntry),
	}
}

// traceBytes estimates the resident size of a decoded trace.
func traceBytes(t *trace.Trace) int64 {
	return int64(len(t.Records))*recordMemBytes + int64(len(t.Name)) + entryOverheadBytes
}

// Get returns the trace for key, loading it with load on a miss. Concurrent
// Gets for the same key share one load call. ctx aborts only this caller's
// wait — an in-flight load always runs to completion so the other waiters
// (and the cache) still get its result.
func (c *TraceCache) Get(ctx context.Context, key string, load func() (*trace.Trace, error)) (*trace.Trace, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.ll.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return e.tr, e.err
	}
	e := &traceEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	c.decodes.Add(1)
	e.tr, e.err = load()
	if e.err == nil && e.tr == nil {
		e.err = errors.New("serve: trace loader returned no trace")
	}
	if e.err == nil {
		e.bytes = traceBytes(e.tr)
	}
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Failed loads are not cached: the waiters already blocked on this
		// entry share the error, later requests retry from scratch.
		delete(c.entries, key)
		c.loadFailures.Add(1)
	} else {
		e.elem = c.ll.PushFront(e)
		c.used += e.bytes
		c.evictLocked()
	}
	c.mu.Unlock()
	return e.tr, e.err
}

// evictLocked drops least-recently-used completed entries until the budget
// holds, always keeping the most recent entry resident. Callers holding a
// *trace.Trace are unaffected — eviction only drops the cache's reference.
func (c *TraceCache) evictLocked() {
	for c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*traceEntry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.bytes
		c.evictions.Add(1)
	}
}

// TraceCacheStats is a snapshot of the cache counters for /metrics.
type TraceCacheStats struct {
	Hits, Misses, Decodes, Evictions, LoadFailures uint64
	Bytes, Budget                                  int64
	Entries                                        int
}

// Stats snapshots the counters and current occupancy.
func (c *TraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	bytes, entries := c.used, c.ll.Len()
	c.mu.Unlock()
	return TraceCacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Decodes:      c.decodes.Load(),
		Evictions:    c.evictions.Load(),
		LoadFailures: c.loadFailures.Load(),
		Bytes:        bytes,
		Budget:       c.budget,
		Entries:      entries,
	}
}
