package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSeedLog populates a small single-segment log and returns the
// segment path plus the stored key/value pairs.
func writeSeedLog(t *testing.T, dir string) (string, map[string][]byte) {
	t.Helper()
	vals := map[string][]byte{
		"simulate:aa": []byte("first response body"),
		"simulate:bb": bytes.Repeat([]byte("0123456789"), 20),
		"sweep:cc":    {0x00, 0x01, 0xfe, 0xff},
	}
	c, err := Open(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"simulate:aa", "simulate:bb", "sweep:cc"} {
		if err := c.Put(k, vals[k]); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0], vals
}

// checkNeverWrong opens a (possibly corrupted) log and asserts the only
// permitted behaviours: every lookup either returns the exact original
// bytes or misses, and the cache remains writable afterwards. It returns
// how many of the seeded keys survived.
func checkNeverWrong(t *testing.T, dir string, vals map[string][]byte) int {
	t.Helper()
	c, err := Open(dir, 0, 0)
	if err != nil {
		t.Fatalf("Open after corruption: %v", err)
	}
	defer c.Close()
	survivors := 0
	for k, want := range vals {
		got, ok := c.Get(k)
		if !ok {
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("corrupted log returned wrong bytes for %s: got %q, want %q", k, got, want)
		}
		survivors++
	}
	// Miss-and-recompute must still work: the log accepts a fresh store.
	if err := c.Put("recomputed", []byte("fresh")); err != nil {
		t.Fatalf("Put after corruption: %v", err)
	}
	if got, ok := c.Get("recomputed"); !ok || !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("Get after recompute = (%q, %v)", got, ok)
	}
	return survivors
}

// TestFlipEveryByte is the deterministic corruption sweep the issue asks
// for: XOR every single byte of a small segment log, one at a time, and
// prove that open/lookup never panics and never yields a record that
// fails its checksum — a flipped bit is always a miss, never a wrong
// answer.
func TestFlipEveryByte(t *testing.T) {
	seedDir := t.TempDir()
	segPath, vals := writeSeedLog(t, seedDir)
	pristine, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	scratch := t.TempDir()
	lostSomething := false
	for off := 0; off < len(pristine); off++ {
		dir := filepath.Join(scratch, fmt.Sprintf("flip-%05d", off))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		mutated := bytes.Clone(pristine)
		mutated[off] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		survivors := checkNeverWrong(t, dir, vals)
		if survivors < len(vals) {
			lostSomething = true
		}
		os.RemoveAll(dir)
	}
	// Sanity: the sweep actually hit payload bytes (a corruption pass
	// where every flip survived would mean the CRC is not being checked).
	if !lostSomething {
		t.Fatal("no flip ever invalidated a record; corruption detection is not engaged")
	}
}

// TestFlipEveryByteAtReadTime corrupts the file while a cache holds it
// open: the damage is discovered by Get's read-back CRC rather than the
// open-time scan, and must be surfaced as a counted miss.
func TestFlipEveryByteAtReadTime(t *testing.T) {
	seedDir := t.TempDir()
	segPath, vals := writeSeedLog(t, seedDir)
	pristine, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off < len(pristine); off++ {
		mutated := bytes.Clone(pristine)
		mutated[off] ^= 0xff
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(dir, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt underneath the open handle, after the clean scan.
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		for k, want := range vals {
			if got, ok := c.Get(k); ok && !bytes.Equal(got, want) {
				t.Fatalf("flip at %d: Get(%s) returned wrong bytes", off, k)
			}
		}
		st := c.Stats()
		if st.Corruptions == 0 && st.Hits != uint64(len(vals)) {
			t.Fatalf("flip at %d: %d hits with %d corruptions — a damaged record vanished without accounting", off, st.Hits, st.Corruptions)
		}
		c.Close()
	}
}

// TestCorruptionAccounting pins the exact metric trail of one detected
// corruption: the entry is dropped, the corruption is counted, and a
// recompute stores a fresh record that then hits.
func TestCorruptionAccounting(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, 0, 0)
	mustPut(t, c, "k", []byte("good value"))
	c.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, 0, 0)
	// Flip one payload byte underneath the open handle (the last byte of
	// the value, well inside the record's frame).
	data[len(data)-frameCRCSize-1] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	wantMiss(t, re, "k")
	st := re.Stats()
	if st.Corruptions != 1 || st.Hits != 0 {
		t.Fatalf("stats after corrupt read = %+v, want exactly one counted corruption", st)
	}
	if st.Entries != 0 {
		t.Fatalf("entries = %d, want corrupt entry dropped", st.Entries)
	}
	mustPut(t, re, "k", []byte("recomputed value"))
	wantGet(t, re, "k", []byte("recomputed value"))
}

// TestHeaderCorruptionDropsSegment covers the open-time path where the
// magic or version is damaged: the whole file is unusable and removed,
// and the cache starts empty rather than failing to open.
func TestHeaderCorruptionDropsSegment(t *testing.T) {
	dir := t.TempDir()
	segPath, _ := writeSeedLog(t, dir)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := openTest(t, dir, 0, 0)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d, want 0 from a headerless segment", st.Entries)
	}
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatalf("unusable segment still on disk: %v", err)
	}
	mustPut(t, c, "fresh", []byte("works"))
	wantGet(t, c, "fresh", []byte("works"))
}
