package resultcache

// Key-derivation tests: every field of a Key must separate entries, and
// a core.KernelVersion bump must atomically invalidate everything stored
// under the old version (the serve-side wiring of this key is pinned in
// internal/serve's TestResultKeyCarriesKernelVersion).

import (
	"testing"

	"softcache/internal/core"
)

func TestKeyDerivationSeparatesEveryField(t *testing.T) {
	base := Key{Kind: "simulate", Trace: "workload:MV:test:1", Configs: `[{"CacheKB":16}]`, Version: core.KernelVersion, Format: "json"}
	seen := map[string]Key{base.String(): base}
	variants := []Key{
		{Kind: "sweep", Trace: base.Trace, Configs: base.Configs, Version: base.Version, Format: base.Format},
		{Kind: base.Kind, Trace: "workload:MV:test:2", Configs: base.Configs, Version: base.Version, Format: base.Format},
		{Kind: base.Kind, Trace: base.Trace, Configs: `[{"CacheKB":32}]`, Version: base.Version, Format: base.Format},
		{Kind: base.Kind, Trace: base.Trace, Configs: base.Configs, Version: base.Version + "-next", Format: base.Format},
		{Kind: base.Kind, Trace: base.Trace, Configs: base.Configs, Version: base.Version, Format: "text"},
		// Length-prefixing means shuffling bytes across field boundaries
		// must not collide.
		{Kind: "simulat", Trace: "eworkload:MV:test:1", Configs: base.Configs, Version: base.Version, Format: base.Format},
	}
	for _, k := range variants {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Fatalf("key collision between %+v and %+v", prev, k)
		}
		seen[s] = k
	}
	if base.String() != base.String() {
		t.Fatal("key derivation is not deterministic")
	}
}

// TestKernelVersionBumpInvalidatesEntries is the satellite guarantee:
// entries stored under one kernel version are unreachable after a bump,
// with no log surgery required.
func TestKernelVersionBumpInvalidatesEntries(t *testing.T) {
	dir := t.TempDir()
	mk := func(version string) string {
		return Key{Kind: "simulate", Trace: "workload:MV:test:1", Configs: "[]", Version: version, Format: "json"}.String()
	}
	c := openTest(t, dir, 0, 0)
	mustPut(t, c, mk(core.KernelVersion), []byte("v1 body"))
	c.Close()

	re := openTest(t, dir, 0, 0)
	wantGet(t, re, mk(core.KernelVersion), []byte("v1 body"))
	wantMiss(t, re, mk(core.KernelVersion+".bumped"))
	// And the bumped generation stores its own entry alongside.
	mustPut(t, re, mk(core.KernelVersion+".bumped"), []byte("v2 body"))
	wantGet(t, re, mk(core.KernelVersion+".bumped"), []byte("v2 body"))
	wantGet(t, re, mk(core.KernelVersion), []byte("v1 body"))
}
