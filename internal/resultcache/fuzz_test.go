package resultcache

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedSegment renders a well-formed segment image in memory, for
// fuzz seeds that start from valid structure.
func buildSeedSegment(pairs [][2][]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], segFormat)
	buf.Write(u32[:])
	for _, kv := range pairs {
		key, val := kv[0], kv[1]
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(val)))
		body := append(append(hdr[:], key...), val...)
		buf.Write(body)
		binary.LittleEndian.PutUint32(u32[:], crc32c(body))
		buf.Write(u32[:])
	}
	return buf.Bytes()
}

// FuzzOpenSegmentLog feeds arbitrary bytes to the cache as a segment
// file. Whatever the bytes, Open must not panic or error, any record it
// does index must read back passing its CRC, and the cache must remain
// fully usable (store + retrieve + reopen) afterwards. This is the
// structure-aware half of the corruption satellite: the seeds are valid
// logs so the fuzzer mutates real frames, not just noise.
func FuzzOpenSegmentLog(f *testing.F) {
	valid := buildSeedSegment([][2][]byte{
		{[]byte("simulate:aa"), []byte("response body one")},
		{[]byte("sweep:bb"), bytes.Repeat([]byte{0xab}, 300)},
		{[]byte("simulate:aa"), []byte("superseding body")},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(valid[:segHeaderSize])          // header only
	f.Add([]byte{})                       // empty file
	f.Add([]byte("SCRL"))                 // short header
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // noise
	mut := bytes.Clone(valid)
	mut[segHeaderSize+2] ^= 0x40 // corrupt first frame's length field
	f.Add(mut)
	huge := buildSeedSegment(nil)
	var lens [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(lens[0:], 16)
	binary.LittleEndian.PutUint32(lens[4:], 0xffffffff) // absurd valLen
	f.Add(append(huge, lens[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "0000000000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(dir, 0, 0)
		if err != nil {
			t.Fatalf("Open must absorb arbitrary bytes, got %v", err)
		}
		defer c.Close()

		// Every key the scan indexed must read back passing its CRC.
		for _, k := range c.Keys() {
			if _, ok := c.Get(k); !ok {
				t.Fatalf("indexed key %q failed its read-back CRC", k)
			}
		}

		// The log stays writable and durable regardless of what the scan
		// salvaged.
		if err := c.Put("fuzz:probe", []byte("still alive")); err != nil {
			t.Fatalf("Put after fuzzed open: %v", err)
		}
		if got, ok := c.Get("fuzz:probe"); !ok || !bytes.Equal(got, []byte("still alive")) {
			t.Fatalf("probe readback = (%q, %v)", got, ok)
		}
		c.Close()
		re, err := Open(dir, 0, 0)
		if err != nil {
			t.Fatalf("reopen after fuzzed cycle: %v", err)
		}
		defer re.Close()
		if got, ok := re.Get("fuzz:probe"); !ok || !bytes.Equal(got, []byte("still alive")) {
			t.Fatalf("probe lost across reopen: (%q, %v)", got, ok)
		}
	})
}
