// Package resultcache is the durable simulation-result cache behind the
// serving stack: a disk-backed key/value store whose values are fully
// rendered response bodies, so a repeat simulation is a lookup instead of
// a run — the paper's thesis (precompute the answer, then just fetch it)
// applied to the serving layer itself.
//
// Durability comes from an append-only segment log (see segment.go): every
// store appends one CRC-framed record, the in-memory index is rebuilt by
// scanning the segments on Open, a torn tail is truncated away, and any
// record that fails its CRC — at open time or on a later read — degrades
// to a miss-and-recompute, never to a wrong answer. An LRU index with a
// byte budget bounds the live set, and singleflight coalescing makes N
// identical concurrent requests cost one computation.
//
// A cache directory has exactly one owner at a time: two processes
// appending to the same segment would interleave frames. The serving
// fleet gives each shard its own -result-cache-dir.
package resultcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

const (
	// maxKeyBytes bounds one key; keys are short hashes (see Key), so
	// anything near this limit is a caller bug, not a workload.
	maxKeyBytes = 4096
	// MaxValueBytes bounds one cached value. Larger values are refused by
	// Put (ErrValueTooLarge) rather than wedging the log.
	MaxValueBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold for the active
	// segment when Open is given 0.
	DefaultSegmentBytes = 8 << 20
	// minBudget is the floor for the byte budget, mirroring the trace
	// cache: a misconfigured budget must not disable caching entirely.
	minBudget = 1 << 20
	// entryOverheadBytes approximates the fixed per-entry cost (map slot,
	// list element, index struct) charged against the budget.
	entryOverheadBytes = 128
)

// ErrClosed is returned by operations on a closed cache.
var ErrClosed = errors.New("resultcache: cache is closed")

// ErrValueTooLarge is returned by Put for values above MaxValueBytes.
var ErrValueTooLarge = errors.New("resultcache: value exceeds the record size limit")

// Cache is the durable result store. All methods are safe for concurrent
// use. Create with Open, release with Close.
type Cache struct {
	dir      string
	budget   int64
	segBytes int64

	mu      sync.Mutex
	index   map[string]*entry   // guarded by mu
	ll      *list.List          // guarded by mu; front = most recently used
	bytes   int64               // guarded by mu; live key+value+overhead bytes
	segs    map[uint64]*segment // guarded by mu
	active  *segment            // guarded by mu
	nextSeq uint64              // guarded by mu
	flights map[string]*flight  // guarded by mu
	closed  bool                // guarded by mu

	hits        atomic.Uint64
	misses      atomic.Uint64
	stores      atomic.Uint64
	evictions   atomic.Uint64
	corruptions atomic.Uint64
}

// entry locates one live value in the segment log.
type entry struct {
	key  string
	seg  *segment
	off  int64 // byte offset of the value within the segment file
	vlen int
	crc  uint32
	cost int64
	elem *list.Element
}

// flight is one in-progress computation other callers coalesce onto.
type flight struct {
	done chan struct{} // closed once val/err are set
	val  []byte
	err  error
}

// Open loads (or creates) the cache directory, rebuilding the index from
// the segment log. budget is the live-byte budget (values below 1 MiB are
// raised to 1 MiB); segmentBytes is the rotation threshold for segment
// files (0 = DefaultSegmentBytes). Corrupt or torn records discovered
// during the scan are dropped — the tail of the newest segment is
// physically truncated back to its last whole record so appends resume on
// a clean boundary.
func Open(dir string, budget, segmentBytes int64) (*Cache, error) {
	if budget < minBudget {
		budget = minBudget
	}
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	c := &Cache{
		dir:      dir,
		budget:   budget,
		segBytes: segmentBytes,
		index:    make(map[string]*entry),
		ll:       list.New(),
		segs:     make(map[uint64]*segment),
		flights:  make(map[string]*flight),
	}
	if err := c.loadSegments(); err != nil {
		c.Close()
		return nil, err
	}
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
	return c, nil
}

// Close releases every segment file handle. Further Get/Put/Do calls fail
// with ErrClosed (Do falls back to computing uncached).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var firstErr error
	for _, seg := range c.segs {
		if err := seg.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Get returns the cached value for key, or (nil, false) on a miss,
// counting a hit when the lookup succeeds. The value is read back from
// the segment log and CRC-verified on every call: a record that no
// longer matches its checksum — a flipped bit on disk — is dropped and
// reported as a miss, never returned.
func (c *Cache) Get(key string) ([]byte, bool) {
	val, ok := c.Peek(key)
	if ok {
		c.hits.Add(1)
	}
	return val, ok
}

// Peek is Get without the hit accounting, for callers that orchestrate
// their own lookup protocol (the streamed-trace path decides hit vs miss
// only after comparing content fingerprints) and count via Hit and Miss.
// Corruption detection and entry dropping behave exactly like Get.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.index[key]
	if !ok || c.closed {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(e.elem)
	seg, off, vlen, crc := e.seg, e.off, e.vlen, e.crc
	c.mu.Unlock()

	val := make([]byte, vlen)
	_, err := seg.f.ReadAt(val, off)
	if err == nil && crc32c(val) == crc {
		return val, true
	}

	// The record is unreadable or fails its CRC. Drop it — but only if it
	// is still the live entry; a concurrent Put may have replaced it.
	c.mu.Lock()
	if cur, ok := c.index[key]; ok && cur == e {
		c.removeLocked(e)
		c.corruptions.Add(1)
	}
	c.mu.Unlock()
	return nil, false
}

// Hit and Miss record one request-level cache outcome, for callers that
// look up via Peek. Do and Get account for themselves; a Peek-based
// protocol calls exactly one of these per request so the hit/miss
// counters stay a request-accurate ledger.
func (c *Cache) Hit()  { c.hits.Add(1) }
func (c *Cache) Miss() { c.misses.Add(1) }

// Put stores val under key, appending one record to the segment log and
// evicting least-recently-used entries beyond the byte budget (the newest
// entry always stays resident, even oversized).
func (c *Cache) Put(key string, val []byte) error {
	if key == "" || len(key) > maxKeyBytes {
		return fmt.Errorf("resultcache: key length %d out of range", len(key))
	}
	if len(val) > MaxValueBytes {
		return ErrValueTooLarge
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.active == nil || c.active.size >= c.segBytes {
		if err := c.rotateLocked(); err != nil {
			return err
		}
	}
	off, crc, err := c.active.append(key, val)
	if err != nil {
		return err
	}
	if old, ok := c.index[key]; ok {
		c.removeLocked(old)
	}
	e := &entry{
		key:  key,
		seg:  c.active,
		off:  off,
		vlen: len(val),
		crc:  crc,
		cost: int64(len(key)) + int64(len(val)) + entryOverheadBytes,
	}
	e.elem = c.ll.PushFront(e)
	c.index[key] = e
	c.active.live++
	c.bytes += e.cost
	c.stores.Add(1)
	c.evictLocked()
	return nil
}

// Do returns the value for key, computing it with compute on a miss.
// Concurrent Do calls for one key coalesce onto a single compute; callers
// that arrive while it runs wait for its result. A failed compute is
// delivered only to the caller that ran it — waiters retry (and at most
// compute once themselves), so one canceled client cannot poison the
// others. hit reports whether the value came from the cache (or a shared
// flight) rather than this caller's own compute. ctx bounds only this
// caller's wait; on a closed cache Do degrades to calling compute
// directly.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	for {
		if v, ok := c.Get(key); ok {
			return v, true, nil
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			v, err := compute()
			return v, false, err
		}
		if _, ok := c.index[key]; ok {
			// A computer stored the value between our failed Get and
			// acquiring the lock; loop back and read it rather than
			// computing a second time.
			c.mu.Unlock()
			continue
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				c.hits.Add(1)
				return f.val, true, nil
			}
			continue // the computer failed; take a turn ourselves
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		c.misses.Add(1)
		f.val, f.err = compute()
		if f.err == nil {
			// Store errors (disk full, closed mid-run) do not fail the
			// request: the computed value is still correct, it is just not
			// durable.
			c.Put(key, f.val)
		}
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return f.val, false, f.err
	}
}

// removeLocked drops one live entry and reclaims its segment if that was
// the last live record in it.
func (c *Cache) removeLocked(e *entry) {
	delete(c.index, e.key)
	c.ll.Remove(e.elem)
	c.bytes -= e.cost
	e.seg.live--
	if e.seg.live == 0 && e.seg != c.active {
		delete(c.segs, e.seg.seq)
		e.seg.remove()
	}
}

// evictLocked drops least-recently-used entries until the budget holds,
// always keeping the most recent entry resident.
func (c *Cache) evictLocked() {
	for c.bytes > c.budget && c.ll.Len() > 1 {
		e := c.ll.Back().Value.(*entry)
		c.removeLocked(e)
		c.evictions.Add(1)
	}
}

// Stats is a snapshot of the cache counters for /metrics.
type Stats struct {
	// Hits counts lookups served from the cache (including waits on a
	// coalesced flight); Misses counts computations actually run by Do.
	Hits, Misses uint64
	// Stores counts records appended; Evictions counts budget evictions;
	// Corruptions counts records dropped because they failed their CRC on
	// read (each one degraded to a miss, never a wrong answer).
	Stores, Evictions, Corruptions uint64
	// Bytes is the live-entry footprint; Budget its bound; Entries and
	// Segments the live index and segment-file counts.
	Bytes, Budget     int64
	Entries, Segments int
}

// Stats snapshots the counters and current occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes, entries, segments := c.bytes, c.ll.Len(), len(c.segs)
	c.mu.Unlock()
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Stores:      c.stores.Load(),
		Evictions:   c.evictions.Load(),
		Corruptions: c.corruptions.Load(),
		Bytes:       bytes,
		Budget:      c.budget,
		Entries:     entries,
		Segments:    segments,
	}
}

// Keys returns the live keys, unordered. Intended for tests and tooling.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.index))
	for k := range c.index {
		out = append(out, k)
	}
	return out
}
