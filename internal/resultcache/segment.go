package resultcache

// The on-disk layout is a sequence of segment files named
// %016x.seg (seq, ascending). Each segment is:
//
//	magic "SCRL" | u32 LE format version
//
// followed by CRC-framed records:
//
//	u32 LE keyLen | u32 LE valLen | key | value | u32 LE CRC32-C
//
// where the checksum covers the 8-byte length header, the key, and the
// value. Records only ever append; a re-store of a key appends a new
// record that overrides the earlier one at scan time. Open scans segments
// in sequence order and stops a segment's scan at the first frame that
// does not verify: on the newest segment that is the torn tail of an
// interrupted append and is truncated away so the file is clean for new
// appends; on older (sealed) segments the remainder is simply not
// indexed — those records degrade to misses, never to wrong answers.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segMagic        = "SCRL"
	segFormat       = 1
	segHeaderSize   = 8 // magic + u32 version
	frameHeaderSize = 8 // u32 keyLen + u32 valLen
	frameCRCSize    = 4
	segSuffix       = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32c is the record checksum: CRC32-C over the value bytes alone for
// read-back verification; frames on disk additionally checksum their
// header and key via frameCRC.
func crc32c(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// segment is one log file. The file handle stays open for pread-style
// value reads until the segment is reclaimed or the cache closes.
type segment struct {
	seq  uint64
	path string
	f    *os.File
	size int64 // bytes written, maintained by append
	live int   // index entries referencing this segment; the owning Cache's mu synchronizes it
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", seq, segSuffix))
}

// createSegment starts a fresh segment file with its header.
func createSegment(dir string, seq uint64) (*segment, error) {
	path := segmentPath(dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segFormat)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &segment{seq: seq, path: path, f: f, size: segHeaderSize}, nil
}

// append writes one framed record and returns the file offset of the
// value bytes plus the CRC32-C of the value (what Get re-verifies).
func (s *segment) append(key string, val []byte) (valOff int64, valCRC uint32, err error) {
	frame := make([]byte, frameHeaderSize+len(key)+len(val)+frameCRCSize)
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(val)))
	copy(frame[frameHeaderSize:], key)
	copy(frame[frameHeaderSize+len(key):], val)
	crc := crc32.Checksum(frame[:frameHeaderSize+len(key)+len(val)], castagnoli)
	binary.LittleEndian.PutUint32(frame[frameHeaderSize+len(key)+len(val):], crc)
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		return 0, 0, fmt.Errorf("resultcache: %w", err)
	}
	valOff = s.size + frameHeaderSize + int64(len(key))
	s.size += int64(len(frame))
	return valOff, crc32c(val), nil
}

// close releases the file handle.
func (s *segment) close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// remove reclaims a fully dead segment: close the handle, delete the file.
func (s *segment) remove() {
	s.close()
	os.Remove(s.path)
}

// scannedRecord is one verified record yielded by scanSegment.
type scannedRecord struct {
	key    string
	valOff int64
	vlen   int
	valCRC uint32
}

// scanSegment walks a segment file's frames, returning every record that
// verifies and the byte offset just past the last good frame. A missing
// or foreign header yields goodEnd 0 (the whole file is unusable). The
// scan is intentionally forgiving: any framing violation — short header,
// absurd lengths, bad checksum, truncated value — ends the scan rather
// than erroring, because a half-written or bit-flipped log must degrade
// to misses, not block startup.
func scanSegment(data []byte) (recs []scannedRecord, goodEnd int64) {
	if len(data) < segHeaderSize || string(data[:4]) != segMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != segFormat {
		return nil, 0
	}
	off := int64(segHeaderSize)
	for {
		if off+frameHeaderSize > int64(len(data)) {
			return recs, off
		}
		klen := int64(binary.LittleEndian.Uint32(data[off:]))
		vlen := int64(binary.LittleEndian.Uint32(data[off+4:]))
		if klen == 0 || klen > maxKeyBytes || vlen > MaxValueBytes {
			return recs, off
		}
		end := off + frameHeaderSize + klen + vlen + frameCRCSize
		if end > int64(len(data)) {
			return recs, off
		}
		body := data[off : off+frameHeaderSize+klen+vlen]
		want := binary.LittleEndian.Uint32(data[end-frameCRCSize:])
		if crc32.Checksum(body, castagnoli) != want {
			return recs, off
		}
		val := data[off+frameHeaderSize+klen : off+frameHeaderSize+klen+vlen]
		recs = append(recs, scannedRecord{
			key:    string(data[off+frameHeaderSize : off+frameHeaderSize+klen]),
			valOff: off + frameHeaderSize + klen,
			vlen:   int(vlen),
			valCRC: crc32c(val),
		})
		off = end
	}
}

// loadSegments rebuilds the index from dir. Called once from Open; the
// cache is not shared yet, but the lock is taken anyway (uncontended) so
// the guarded-field discipline holds uniformly.
func (c *Cache) loadSegments() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	names, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	for i, seq := range seqs {
		path := segmentPath(c.dir, seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("resultcache: %w", err)
		}
		recs, goodEnd := scanSegment(data)
		last := i == len(seqs)-1
		if goodEnd == 0 {
			// Unrecognisable header: nothing in this file is usable. Drop
			// it so it cannot shadow the sequence space.
			os.Remove(path)
			continue
		}
		if last && goodEnd < int64(len(data)) {
			// Torn tail of the newest segment: truncate back to the last
			// whole record so future appends start on a clean boundary.
			if err := os.Truncate(path, goodEnd); err != nil {
				return fmt.Errorf("resultcache: %w", err)
			}
		}
		mode := os.O_RDONLY
		if last {
			mode = os.O_RDWR
		}
		f, err := os.OpenFile(path, mode, 0o644)
		if err != nil {
			return fmt.Errorf("resultcache: %w", err)
		}
		seg := &segment{seq: seq, path: path, f: f, size: goodEnd}
		c.segs[seq] = seg
		for _, rec := range recs {
			if old, ok := c.index[rec.key]; ok {
				// Superseded record: unlink only. Segment reclamation is
				// deferred to the post-load pass below — removeLocked could
				// otherwise delete the very segment we are indexing.
				delete(c.index, old.key)
				c.ll.Remove(old.elem)
				c.bytes -= old.cost
				old.seg.live--
			}
			e := &entry{
				key:  rec.key,
				seg:  seg,
				off:  rec.valOff,
				vlen: rec.vlen,
				crc:  rec.valCRC,
				cost: int64(len(rec.key)) + int64(rec.vlen) + entryOverheadBytes,
			}
			e.elem = c.ll.PushFront(e)
			c.index[rec.key] = e
			seg.live++
			c.bytes += e.cost
		}
	}

	c.nextSeq = 1
	if len(seqs) > 0 {
		lastSeq := seqs[len(seqs)-1]
		c.nextSeq = lastSeq + 1
		if seg, ok := c.segs[lastSeq]; ok && seg.size < c.segBytes {
			c.active = seg
		}
	}
	// Reclaim sealed segments left with nothing live (every record was
	// superseded by a later one).
	for seq, seg := range c.segs {
		if seg.live == 0 && seg != c.active {
			delete(c.segs, seq)
			seg.remove()
		}
	}
	return nil
}

// rotateLocked seals the active segment and starts a new one.
func (c *Cache) rotateLocked() error {
	seg, err := createSegment(c.dir, c.nextSeq)
	if err != nil {
		return err
	}
	if c.active != nil && c.active.live == 0 {
		// The outgoing active segment holds no live records (everything in
		// it was superseded or evicted); reclaim it immediately.
		delete(c.segs, c.active.seq)
		c.active.remove()
	}
	c.nextSeq++
	c.segs[seg.seq] = seg
	c.active = seg
	return nil
}
