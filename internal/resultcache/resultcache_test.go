package resultcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTest(t *testing.T, dir string, budget, segBytes int64) *Cache {
	t.Helper()
	c, err := Open(dir, budget, segBytes)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustPut(t *testing.T, c *Cache, key string, val []byte) {
	t.Helper()
	if err := c.Put(key, val); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func wantGet(t *testing.T, c *Cache, key string, val []byte) {
	t.Helper()
	got, ok := c.Get(key)
	if !ok {
		t.Fatalf("Get(%s): miss, want hit", key)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("Get(%s) = %q, want %q", key, got, val)
	}
}

func wantMiss(t *testing.T, c *Cache, key string) {
	t.Helper()
	if got, ok := c.Get(key); ok {
		t.Fatalf("Get(%s) = %q, want miss", key, got)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openTest(t, t.TempDir(), 0, 0)
	vals := map[string][]byte{
		"simulate:a": []byte("alpha body"),
		"simulate:b": bytes.Repeat([]byte{0x00, 0xff, 0x7f}, 1000),
		"sweep:c":    []byte(""),
	}
	for k, v := range vals {
		mustPut(t, c, k, v)
	}
	for k, v := range vals {
		wantGet(t, c, k, v)
	}
	wantMiss(t, c, "simulate:absent")
	st := c.Stats()
	if st.Stores != 3 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 stores, 3 entries", st)
	}
	if st.Hits != 3 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 3 hits (bare Get misses are uncounted)", st)
	}
	wantBytes := int64(0)
	for k, v := range vals {
		wantBytes += int64(len(k)) + int64(len(v)) + entryOverheadBytes
	}
	if st.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", st.Bytes, wantBytes)
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	c := openTest(t, t.TempDir(), 0, 0)
	mustPut(t, c, "k", []byte("v1"))
	mustPut(t, c, "k", []byte("v2 is longer"))
	wantGet(t, c, "k", []byte("v2 is longer"))
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 after overwrite", st.Entries)
	}
	if want := int64(len("k")+len("v2 is longer")) + entryOverheadBytes; st.Bytes != want {
		t.Fatalf("bytes = %d, want %d (old record's cost released)", st.Bytes, want)
	}
}

func TestPutRejectsBadSizes(t *testing.T) {
	c := openTest(t, t.TempDir(), 0, 0)
	if err := c.Put("", []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded")
	}
	if err := c.Put(string(bytes.Repeat([]byte("k"), maxKeyBytes+1)), []byte("v")); err == nil {
		t.Fatal("Put with oversized key succeeded")
	}
	if err := c.Put("k", make([]byte, MaxValueBytes+1)); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("Put oversized value: err = %v, want ErrValueTooLarge", err)
	}
}

func TestLRUEvictionHonoursByteBudget(t *testing.T) {
	// Budget is floored at minBudget, so size entries to that floor.
	val := make([]byte, minBudget/3)
	c := openTest(t, t.TempDir(), 1, 0)
	mustPut(t, c, "a", val)
	mustPut(t, c, "b", val)
	mustPut(t, c, "c", val) // over budget: evicts a (the LRU tail)
	wantMiss(t, c, "a")
	wantGet(t, c, "b", val)

	// b was just touched, so the next eviction takes c.
	mustPut(t, c, "d", val)
	wantMiss(t, c, "c")
	wantGet(t, c, "b", val)
	wantGet(t, c, "d", val)

	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d exceeds budget %d", st.Bytes, st.Budget)
	}

	// An entry bigger than the whole budget still becomes resident — the
	// newest entry is never evicted by its own store.
	huge := make([]byte, minBudget+1024)
	mustPut(t, c, "huge", huge)
	wantGet(t, c, "huge", huge)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want only the oversized newest entry", st.Entries)
	}
}

func TestSegmentRotationAndReclamation(t *testing.T) {
	dir := t.TempDir()
	const segBytes = 4 << 10
	c := openTest(t, dir, 0, segBytes)
	val := make([]byte, 1<<10)
	for i := 0; i < 16; i++ {
		mustPut(t, c, fmt.Sprintf("k%02d", i), val)
	}
	st := c.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want rotation to have produced several", st.Segments)
	}
	// Overwrite every key: all old records die; their sealed segments
	// must be deleted from disk once nothing live remains in them.
	for i := 0; i < 16; i++ {
		mustPut(t, c, fmt.Sprintf("k%02d", i), val)
	}
	for i := 0; i < 16; i++ {
		wantGet(t, c, fmt.Sprintf("k%02d", i), val)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(ents), c.Stats().Segments; got != want {
		t.Fatalf("disk has %d segment files, stats says %d live segments", got, want)
	}
	if got := c.Stats().Segments; got > 8 {
		t.Fatalf("segments = %d after full overwrite, want dead segments reclaimed", got)
	}
}

func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	vals := map[string][]byte{}
	c := openTest(t, dir, 0, 4<<10)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("simulate:key-%02d", i)
		v := bytes.Repeat([]byte{byte(i)}, 200+i*31)
		vals[k] = v
		mustPut(t, c, k, v)
	}
	mustPut(t, c, "simulate:key-03", []byte("overwritten"))
	vals["simulate:key-03"] = []byte("overwritten")
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := openTest(t, dir, 0, 4<<10)
	for k, v := range vals {
		wantGet(t, re, k, v)
	}
	if st := re.Stats(); st.Entries != len(vals) {
		t.Fatalf("entries after reopen = %d, want %d", st.Entries, len(vals))
	}
	// The reopened log keeps accepting writes.
	mustPut(t, re, "post-restart", []byte("fresh"))
	wantGet(t, re, "post-restart", []byte("fresh"))
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, 0, 0)
	mustPut(t, c, "a", []byte("alpha"))
	mustPut(t, c, "b", []byte("beta"))
	c.Close()

	// Simulate an append interrupted mid-record: garbage past the last
	// whole frame.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want exactly one", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	tail := []byte{0x10, 0x00, 0x00, 0x00, 0xff, 0xff} // half a frame header + junk
	if _, err := f.Write(tail); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(segs[0])

	re := openTest(t, dir, 0, 0)
	wantGet(t, re, "a", []byte("alpha"))
	wantGet(t, re, "b", []byte("beta"))
	after, _ := os.Stat(segs[0])
	if after.Size() != before.Size()-int64(len(tail)) {
		t.Fatalf("tail not truncated: size %d, want %d", after.Size(), before.Size()-int64(len(tail)))
	}
	// Appends continue on the clean boundary and survive another cycle.
	mustPut(t, re, "c", []byte("gamma"))
	re.Close()
	re2 := openTest(t, dir, 0, 0)
	for k, v := range map[string][]byte{"a": []byte("alpha"), "b": []byte("beta"), "c": []byte("gamma")} {
		wantGet(t, re2, k, v)
	}
}

func TestDoCoalescesConcurrentCallers(t *testing.T) {
	c := openTest(t, t.TempDir(), 0, 0)
	const n = 16
	started := make(chan struct{})
	releaseCompute := make(chan struct{})
	var computes int
	var mu sync.Mutex

	var wg sync.WaitGroup
	results := make([][]byte, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, hit, err := c.Do(context.Background(), "hot", func() ([]byte, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				close(started)
				<-releaseCompute
				return []byte("the answer"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], hits[i] = val, hit
		}(i)
	}
	<-started
	close(releaseCompute)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (coalesced)", computes)
	}
	nhit := 0
	for i := range results {
		if !bytes.Equal(results[i], []byte("the answer")) {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if hits[i] {
			nhit++
		}
	}
	if nhit != n-1 {
		t.Fatalf("hits = %d, want %d (all but the computer)", nhit, n-1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != uint64(n-1) || st.Stores != 1 {
		t.Fatalf("stats = %+v, want misses=1 hits=%d stores=1", st, n-1)
	}
}

func TestDoFailedComputeNotSharedWithWaiters(t *testing.T) {
	c := openTest(t, t.TempDir(), 0, 0)
	boom := errors.New("boom")
	inFlight := make(chan struct{})
	releaseFail := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var firstErr error
	go func() {
		defer wg.Done()
		_, _, firstErr = c.Do(context.Background(), "k", func() ([]byte, error) {
			close(inFlight)
			<-releaseFail
			return nil, boom
		})
	}()
	<-inFlight

	wg.Add(1)
	var waiterVal []byte
	var waiterErr error
	go func() {
		defer wg.Done()
		waiterVal, _, waiterErr = c.Do(context.Background(), "k", func() ([]byte, error) {
			return []byte("recovered"), nil
		})
	}()
	close(releaseFail)
	wg.Wait()

	if !errors.Is(firstErr, boom) {
		t.Fatalf("computer err = %v, want boom", firstErr)
	}
	if waiterErr != nil || !bytes.Equal(waiterVal, []byte("recovered")) {
		t.Fatalf("waiter got (%q, %v), want its own successful compute", waiterVal, waiterErr)
	}
	// The failure was not cached.
	wantGet(t, c, "k", []byte("recovered"))
}

func TestDoWaiterHonoursContext(t *testing.T) {
	c := openTest(t, t.TempDir(), 0, 0)
	inFlight := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func() ([]byte, error) {
		close(inFlight)
		<-release
		return []byte("late"), nil
	})
	<-inFlight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() ([]byte, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClosedCacheDegradesToDirectCompute(t *testing.T) {
	c := openTest(t, t.TempDir(), 0, 0)
	mustPut(t, c, "k", []byte("v"))
	c.Close()
	wantMiss(t, c, "k")
	if err := c.Put("k2", []byte("v2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed: %v, want ErrClosed", err)
	}
	val, hit, err := c.Do(context.Background(), "k", func() ([]byte, error) { return []byte("direct"), nil })
	if err != nil || hit || !bytes.Equal(val, []byte("direct")) {
		t.Fatalf("Do on closed = (%q, %v, %v), want uncached direct compute", val, hit, err)
	}
}
