package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Key is the identity of one cached result: which kind of computation,
// over which trace, with which canonicalized config group, rendered in
// which response format — all bound to the kernel/schema version, so a
// kernel change (core.KernelVersion bump) invalidates every prior entry
// at lookup time without touching the log.
type Key struct {
	// Kind names the computation ("simulate", "sweep", "stream", ...).
	Kind string
	// Trace is the trace identity: a serve-layer trace key for named
	// workloads / din uploads, or a content fingerprint for streams.
	Trace string
	// Configs is the canonical serialization of the config group (for the
	// serve layer, the deterministic JSON of the built []core.Config plus
	// any request axes — not the user's spelling of it).
	Configs string
	// Version is the kernel/schema version (core.KernelVersion).
	Version string
	// Format is the response format the cached bytes were rendered in
	// ("json", "text"): same simulation, different bytes, different entry.
	Format string
}

// String derives the stable cache key. Fields are length-prefixed before
// hashing so no concatenation of different field values can collide, and
// the human-readable Kind survives as a prefix for log/debug legibility.
func (k Key) String() string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, part := range []string{k.Kind, k.Trace, k.Configs, k.Version, k.Format} {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(part)))
		h.Write(lenBuf[:])
		h.Write([]byte(part))
	}
	sum := h.Sum(nil)
	return fmt.Sprintf("%s:%x", k.Kind, sum[:16])
}
