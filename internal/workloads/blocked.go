package workloads

import (
	"fmt"

	"softcache/internal/loopir"
)

// BlockedMVSize returns the vector length used by BlockedMV at this scale.
func BlockedMVSize(s Scale) int { return pick(s, 200, 1000) }

// BlockedMV builds the §4.2 blocked matrix-vector multiply: the X vector is
// blocked so a block stays cached across the j1 sweep. block must divide
// the problem size (BlockedMVSize). Software control lets larger blocks
// survive pollution (fig. 11a).
//
//	DO jb = 0,N-1,B
//	  DO j1 = 0,N-1
//	    reg = Y(j1)
//	    DO j2 = jb,jb+B-1
//	      reg += A(j2,j1) * X(j2)
//	    Y(j1) = reg
func BlockedMV(s Scale, block int) (*loopir.Program, error) {
	n := BlockedMVSize(s)
	if block <= 0 || n%block != 0 {
		return nil, fmt.Errorf("workloads: block %d must divide N=%d", block, n)
	}
	p := loopir.NewProgram(fmt.Sprintf("BlockedMV-b%d", block))
	p.DeclareArray("A", n, n)
	p.DeclareArray("X", n)
	p.DeclareArray("Y", n)

	jb, j1, j2 := loopir.V("jb"), loopir.V("j1"), loopir.V("j2")
	p.Add(
		loopir.DoStep("jb", loopir.C(0), loopir.C(n-1), block,
			loopir.Do("j1", loopir.C(0), loopir.C(n-1),
				loopir.Read("Y", j1),
				loopir.Do("j2", jb, loopir.Plus(jb, block-1),
					loopir.Read("A", j2, j1),
					loopir.Read("X", j2),
				),
				loopir.Store("Y", j1),
			),
		),
	)
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// BlockedMMSize returns (N, BK): matrix order and k-block size at this
// scale.
func BlockedMMSize(s Scale) (n, bk int) {
	if s == ScalePaper {
		return 72, 24
	}
	return 24, 8
}

// BlockedMM builds the §4.3 blocked matrix-matrix multiply used in the
// data-copying experiment (fig. 11b). ld is the leading dimension of the A
// matrix (the experiment sweeps 116..126 to expose self-interference
// pathologies); copying selects the variant that first copies each A block
// into a contiguous buffer TA.
func BlockedMM(s Scale, ld int, copying bool) (*loopir.Program, error) {
	n, bk := BlockedMMSize(s)
	if ld < n {
		return nil, fmt.Errorf("workloads: leading dimension %d smaller than order %d", ld, n)
	}
	name := fmt.Sprintf("BlockedMM-ld%d", ld)
	if copying {
		name += "-copy"
	}
	p := loopir.NewProgram(name)
	p.DeclareArray("A", ld, n) // only rows 0..n-1 are touched
	p.DeclareArray("B", n, n)
	p.DeclareArray("C", ld, n)
	if copying {
		p.DeclareArray("TA", n, bk)
	}

	kb, j, k, i := loopir.V("kb"), loopir.V("j"), loopir.V("k"), loopir.V("i")

	var blockBody []loopir.Stmt
	if copying {
		// Refill loop: streams A into the contiguous local-memory array.
		// Under software control the refill exploits virtual lines and the
		// temporally-tagged TA resists being flushed by the stream (§4.3).
		copyLoop := loopir.Do("kc", kb, loopir.Plus(kb, bk-1),
			loopir.Do("ic", loopir.C(0), loopir.C(n-1),
				loopir.Read("A", loopir.V("ic"), loopir.V("kc")),
				loopir.Store("TA", loopir.V("ic"), loopir.Sum(loopir.V("kc"), loopir.SV(-1, "kb"))),
			),
		)
		compute := loopir.Do("j", loopir.C(0), loopir.C(n-1),
			loopir.Do("k", loopir.C(0), loopir.C(bk-1),
				loopir.Do("i", loopir.C(0), loopir.C(n-1),
					loopir.Read("C", i, j),
					// TA is the local-memory array: mark it temporal so
					// the bounce-back cache protects it. The analyser
					// derives this too (j is absent); the explicit tag
					// mirrors the paper's directive-style usage.
					loopir.Read("TA", i, k).WithTags(true, true),
					loopir.Read("B", loopir.Sum(k, kb), j),
					loopir.Store("C", i, j),
				),
			),
		)
		blockBody = []loopir.Stmt{copyLoop, compute}
	} else {
		compute := loopir.Do("j", loopir.C(0), loopir.C(n-1),
			loopir.Do("k", kb, loopir.Plus(kb, bk-1),
				loopir.Do("i", loopir.C(0), loopir.C(n-1),
					loopir.Read("C", i, j),
					loopir.Read("A", i, k),
					loopir.Read("B", k, j),
					loopir.Store("C", i, j),
				),
			),
		)
		blockBody = []loopir.Stmt{compute}
	}

	p.Add(loopir.DoStep("kb", loopir.C(0), loopir.C(n-1), bk, blockBody...))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
