package workloads

import "softcache/internal/loopir"

// Two extra workloads beyond the paper's suite, exposed for users of the
// library and exercised by the test suite: a strided butterfly pattern in
// the style of an in-place FFT, and a matrix transpose. Both are classic
// stress cases for the spatial mechanism — the FFT's large power-of-two
// strides defeat the spatial rule at the early stages and alias badly in a
// direct-mapped cache, while the transpose is spatial on exactly one side.

func init() {
	register(Definition{
		Name:        "FFT",
		Description: "in-place FFT-style butterflies: power-of-two strides, pathological aliasing",
		Build:       buildFFT,
	})
	register(Definition{
		Name:        "Transpose",
		Description: "matrix transpose: stride-1 reads, stride-N writes",
		Build:       buildTranspose,
	})
}

// buildFFT models log2(n) butterfly stages over a complex vector (stored
// as two real vectors). Stage s pairs elements stride 2^s apart: the first
// two stages are spatial (stride < 4 elements); later stages are not, and
// at stride >= cache-size the pairs alias in a direct-mapped cache.
func buildFFT(s Scale) (*loopir.Program, error) {
	logN := pick(s, 10, 13) // 1K / 8K complex points
	n := 1 << logN
	p := loopir.NewProgram("FFT")
	p.DeclareArray("RE", n)
	p.DeclareArray("IM", n)

	for stage := 0; stage < logN; stage++ {
		stride := 1 << stage
		half := n / 2
		iv := loopir.V("i" + suffix(stage))
		// Pair index: for butterfly k of this stage, the two elements are
		// at base = (k/stride)*2*stride + k%stride and base+stride. We
		// model the address stream with a dense walk over the lower
		// element plus its partner (a faithful stand-in for the access
		// pattern without integer div/mod in the IR): i and i+stride for
		// i in [0, half).
		body := []loopir.Stmt{
			loopir.Read("RE", iv),
			loopir.Read("RE", loopir.Plus(iv, stride)),
			loopir.Read("IM", iv),
			loopir.Read("IM", loopir.Plus(iv, stride)),
			loopir.Store("RE", iv),
			loopir.Store("IM", loopir.Plus(iv, stride)),
		}
		p.Add(loopir.Do("i"+suffix(stage), loopir.C(0), loopir.C(half-1), body...))
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func suffix(i int) string {
	const digits = "0123456789"
	if i < 10 {
		return digits[i : i+1]
	}
	return digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

// buildTranspose is B = A^T with A walked in its storage order: reads are
// stride-1 (spatial), writes stride-N (no tags). Software assistance can
// only help the read side — a useful asymmetric case.
func buildTranspose(s Scale) (*loopir.Program, error) {
	n := pick(s, 64, 256)
	p := loopir.NewProgram("Transpose")
	p.DeclareArray("A", n, n)
	p.DeclareArray("B", n, n)
	i, j := loopir.V("i"), loopir.V("j")
	p.Add(loopir.Do("j", loopir.C(0), loopir.C(n-1),
		loopir.Do("i", loopir.C(0), loopir.C(n-1),
			loopir.Read("A", i, j),
			loopir.Store("B", j, i),
		),
	))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
