package workloads

import "softcache/internal/loopir"

// ADM, ARC and FLO appear only in the fig. 10a experiment (hot subroutines
// of Perfect Club codes traced alone), but full variants are registered too
// so the CLI tools can exercise them.

func init() {
	register(Definition{
		Name:        "ADM",
		Description: "air-pollution-model-style code: vertical diffusion stencil plus poisoned periphery",
		Build:       buildADM,
	})
	register(Definition{
		Name:        "ADM-kernel",
		Description: "ADM vertical diffusion sweep traced alone (fig. 10a)",
		Build:       buildADMKernel,
		Kernel:      true,
	})
	register(Definition{
		Name:        "ARC",
		Description: "2-D fluid-code-style ADI sweeps: one stride-1 direction, one strided direction",
		Build:       buildARC,
	})
	register(Definition{
		Name:        "ARC-kernel",
		Description: "ARC ADI sweeps traced alone (fig. 10a)",
		Build:       buildARCKernel,
		Kernel:      true,
	})
	register(Definition{
		Name:        "FLO",
		Description: "transonic-flow-style 5-point stencil with uniformly generated group dependences",
		Build:       buildFLO,
	})
	register(Definition{
		Name:        "FLO-kernel",
		Description: "FLO stencil update traced alone (fig. 10a)",
		Build:       buildFLOKernel,
		Kernel:      true,
	})
}

// admDiffusion builds the vertical diffusion stencil shared by the full and
// kernel ADM variants: C(i,k) updated from C(i,k±1) with a per-column
// coefficient D(i).
func admDiffusion(nx, nz int) loopir.Stmt {
	i, k := loopir.V("i"), loopir.V("k")
	return loopir.Do("k", loopir.C(1), loopir.C(nz-2),
		loopir.Do("i", loopir.C(0), loopir.C(nx-1),
			loopir.Read("CC", i, k),
			loopir.Read("CC", i, loopir.Plus(k, 1)),
			loopir.Read("CC", i, loopir.Plus(k, -1)),
			loopir.Read("DD", i),
			loopir.Store("CC", i, k),
		),
	)
}

func buildADM(s Scale) (*loopir.Program, error) {
	nx := pick(s, 48, 160)
	nz := pick(s, 8, 16)
	steps := pick(s, 2, 6)

	p := loopir.NewProgram("ADM")
	p.DeclareArray("CC", nx, nz)
	p.DeclareArray("DD", nx)
	p.DeclareArray("EM", 2*nx)

	emissions := loopir.Do("e", loopir.C(0), loopir.C(2*nx-1),
		&loopir.Call{Name: "chemistry"},
		loopir.Read("EM", loopir.V("e")),
		loopir.Store("EM", loopir.V("e")),
	)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), admDiffusion(nx, nz), emissions))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func buildADMKernel(s Scale) (*loopir.Program, error) {
	nx := pick(s, 64, 224)
	nz := pick(s, 8, 16)
	steps := pick(s, 2, 8)

	p := loopir.NewProgram("ADM-kernel")
	p.DeclareArray("CC", nx, nz)
	p.DeclareArray("DD", nx)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), admDiffusion(nx, nz)))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// arcSweeps builds the two ADI half-sweeps: the x sweep is stride-1
// (spatial), the y sweep walks the grid with stride n (no tags).
func arcSweeps(n int) []loopir.Stmt {
	i, j := loopir.V("i"), loopir.V("j")
	xsweep := loopir.Do("j", loopir.C(0), loopir.C(n-1),
		loopir.Do("i", loopir.C(1), loopir.C(n-2),
			loopir.Read("U", i, j),
			loopir.Read("U", loopir.Plus(i, 1), j),
			loopir.Read("U", loopir.Plus(i, -1), j),
			loopir.Store("UT", i, j),
		),
	)
	ysweep := loopir.Do("i2", loopir.C(0), loopir.C(n-1),
		loopir.Do("j2", loopir.C(1), loopir.C(n-2),
			loopir.Read("UT", loopir.V("i2"), loopir.V("j2")),
			loopir.Read("UT", loopir.V("i2"), loopir.Plus(loopir.V("j2"), 1)),
			loopir.Read("UT", loopir.V("i2"), loopir.Plus(loopir.V("j2"), -1)),
			loopir.Store("U", loopir.V("i2"), loopir.V("j2")),
		),
	)
	return []loopir.Stmt{xsweep, ysweep}
}

func buildARC(s Scale) (*loopir.Program, error) {
	n := pick(s, 48, 128)
	steps := pick(s, 1, 3)

	p := loopir.NewProgram("ARC")
	p.DeclareArray("U", n, n)
	p.DeclareArray("UT", n, n)
	p.DeclareArray("RES", 2*n)

	body := arcSweeps(n)
	residual := loopir.Do("r", loopir.C(0), loopir.C(2*n-1),
		&loopir.Call{Name: "norm"},
		loopir.Read("RES", loopir.V("r")),
		loopir.Store("RES", loopir.V("r")),
	)
	body = append(body, residual)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), body...))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func buildARCKernel(s Scale) (*loopir.Program, error) {
	n := pick(s, 48, 144)
	steps := pick(s, 1, 4)
	p := loopir.NewProgram("ARC-kernel")
	p.DeclareArray("U", n, n)
	p.DeclareArray("UT", n, n)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), arcSweeps(n)...))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// floStencil builds the 5-point stencil update: the P(i±1,j), P(i,j±1)
// group makes every P reference temporal by uniform generation, and the
// unit innermost stride makes them spatial — the best case for the combined
// mechanism.
func floStencil(n int) loopir.Stmt {
	i, j := loopir.V("i"), loopir.V("j")
	return loopir.Do("j", loopir.C(1), loopir.C(n-2),
		loopir.Do("i", loopir.C(1), loopir.C(n-2),
			loopir.Read("P", i, j),
			loopir.Read("P", loopir.Plus(i, 1), j),
			loopir.Read("P", loopir.Plus(i, -1), j),
			loopir.Read("P", i, loopir.Plus(j, 1)),
			loopir.Read("P", i, loopir.Plus(j, -1)),
			loopir.Store("PN", i, j),
		),
	)
}

func buildFLO(s Scale) (*loopir.Program, error) {
	n := pick(s, 48, 128)
	steps := pick(s, 1, 3)

	p := loopir.NewProgram("FLO")
	p.DeclareArray("P", n, n)
	p.DeclareArray("PN", n, n)
	p.DeclareArray("FLX", 3*n)

	flux := loopir.Do("f", loopir.C(0), loopir.C(3*n-1),
		&loopir.Call{Name: "farfield"},
		loopir.Read("FLX", loopir.V("f")),
		loopir.Store("FLX", loopir.V("f")),
	)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), floStencil(n), flux))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func buildFLOKernel(s Scale) (*loopir.Program, error) {
	n := pick(s, 48, 144)
	steps := pick(s, 1, 4)
	p := loopir.NewProgram("FLO-kernel")
	p.DeclareArray("P", n, n)
	p.DeclareArray("PN", n, n)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), floStencil(n)))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
