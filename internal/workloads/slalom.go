package workloads

import "softcache/internal/loopir"

func init() {
	register(Definition{
		Name:        "Slalom",
		Description: "Slalom-style dense LU factorisation (right-looking, no pivoting)",
		Build:       buildSlalom,
	})
}

// buildSlalom models the LU solver at the heart of the Slalom benchmark:
//
//	DO k = 0,N-2
//	  DO j = k+1,N-1
//	    DO i = k+1,N-1
//	      A(i,j) = A(i,j) - A(i,k) * A(k,j)
//
// The triangular nest exercises affine bounds in enclosing loop variables.
// The analyser tags A(i,j) spatial (unit innermost stride, via the group
// dependence also temporal), A(i,k) temporal+spatial (j absent), A(k,j)
// temporal (i absent, innermost-invariant). The matrix is several times
// the 8 KiB cache, so pollution limits the temporal reuse — the pattern
// blocked algorithms (§4.2) attack.
func buildSlalom(s Scale) (*loopir.Program, error) {
	n := pick(s, 48, 104)
	p := loopir.NewProgram("Slalom")
	p.DeclareArray("A", n, n)
	p.DeclareArray("B", n)

	i, j, k := loopir.V("i"), loopir.V("j"), loopir.V("k")

	factor := loopir.Do("k", loopir.C(0), loopir.C(n-2),
		loopir.Do("j", loopir.Plus(k, 1), loopir.C(n-1),
			loopir.Do("i", loopir.Plus(k, 1), loopir.C(n-1),
				loopir.Read("A", i, j),
				loopir.Read("A", i, k),
				loopir.Read("A", k, j),
				loopir.Store("A", i, j),
			),
		),
	)

	// Forward substitution sweep: B(i) -= A(i,k)*B(k).
	solve := loopir.Do("k2", loopir.C(0), loopir.C(n-2),
		loopir.Do("i2", loopir.Plus(loopir.V("k2"), 1), loopir.C(n-1),
			loopir.Read("A", loopir.V("i2"), loopir.V("k2")),
			loopir.Read("B", loopir.V("k2")),
			loopir.Read("B", loopir.V("i2")),
			loopir.Store("B", loopir.V("i2")),
		),
	)

	p.Add(factor, solve)
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
