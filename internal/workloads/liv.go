package workloads

import "softcache/internal/loopir"

func init() {
	register(Definition{
		Name:        "LIV",
		Description: "Livermore-loops-style vector kernel medley",
		Build:       buildLIV,
	})
}

// buildLIV strings together kernels in the style of the classic Livermore
// loops, each wrapped in a small repetition loop as the original benchmark
// does. The mix produces long stride-one streams (spatial tags nearly
// everywhere) with cross-repetition reuse (temporal tags via the absent
// repetition variable), and a working set of a few vectors around twice the
// 8 KiB cache — the profile fig. 1 shows for LIV.
func buildLIV(s Scale) (*loopir.Program, error) {
	n := pick(s, 256, 2000)
	reps := pick(s, 2, 6)

	p := loopir.NewProgram("LIV")
	for _, a := range []string{"X", "Y", "Z", "U", "V", "W"} {
		p.DeclareArray(a, n+16)
	}

	k := loopir.V("k")

	// Kernel 1 — hydro fragment: X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11)).
	k1 := loopir.Do("l", loopir.C(0), loopir.C(reps-1),
		loopir.Do("k", loopir.C(0), loopir.C(n-1),
			loopir.Read("Y", k),
			loopir.Read("Z", loopir.Plus(k, 10)),
			loopir.Read("Z", loopir.Plus(k, 11)),
			loopir.Store("X", k),
		),
	)

	// Kernel 3 — inner product: Q += Z(k)*X(k).
	k3 := loopir.Do("l3", loopir.C(0), loopir.C(reps-1),
		loopir.Do("k", loopir.C(0), loopir.C(n-1),
			loopir.Read("Z", k),
			loopir.Read("X", k),
		),
	)

	// Kernel 5 — tri-diagonal elimination: X(k) = Z(k)*(Y(k) - X(k-1)).
	k5 := loopir.Do("l5", loopir.C(0), loopir.C(reps-1),
		loopir.Do("k", loopir.C(1), loopir.C(n-1),
			loopir.Read("Z", k),
			loopir.Read("Y", k),
			loopir.Read("X", loopir.Plus(k, -1)),
			loopir.Store("X", k),
		),
	)

	// Kernel 7 — equation of state fragment: many operands per point.
	k7 := loopir.Do("l7", loopir.C(0), loopir.C(reps-1),
		loopir.Do("k", loopir.C(0), loopir.C(n-1),
			loopir.Read("U", k),
			loopir.Read("Z", loopir.Plus(k, 3)),
			loopir.Read("Y", k),
			loopir.Read("U", loopir.Plus(k, 2)),
			loopir.Read("U", loopir.Plus(k, 6)),
			loopir.Store("W", k),
		),
	)

	// Kernel 12 — first difference: X(k) = Y(k+1) - Y(k).
	k12 := loopir.Do("l12", loopir.C(0), loopir.C(reps-1),
		loopir.Do("k", loopir.C(0), loopir.C(n-1),
			loopir.Read("Y", loopir.Plus(k, 1)),
			loopir.Read("Y", k),
			loopir.Store("X", k),
		),
	)

	p.Add(k1, k3, k5, k7, k12)
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
