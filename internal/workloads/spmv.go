package workloads

import (
	"softcache/internal/loopir"
	"softcache/internal/timing"
)

func init() {
	register(Definition{
		Name:        "SpMV",
		Description: "CSR sparse matrix-vector multiply with §4.1 user directives",
		Build:       buildSpMV,
	})
}

// buildSpMV is the paper's §4.1 sparse loop:
//
//	DO j1 = 0,N-1
//	  reg = Y(j1)
//	  DO j2 = D(j1), D(j1+1)-1
//	    reg += A(j2) * X(Index(j2))
//	  ENDDO
//	  Y(j1) = reg
//	ENDDO
//
// The sparse pattern is random with an average of nnzPerRow non-zeros per
// row (the paper quotes 10–80 reuses per element for 3-D problems).
// Because no compiler analysis applies to sparse codes, the references
// carry user directives (Access.Force), exactly the mechanism §4.1
// describes: the streaming A and Index arrays are tagged spatial-only (so
// they use virtual lines but never bounce back), the randomly-hit X vector
// is tagged temporal-only, Y temporal+spatial.
func buildSpMV(s Scale) (*loopir.Program, error) {
	n := pick(s, 160, 1200)
	nnzPerRow := pick(s, 12, 30)

	// Deterministic random sparsity pattern (fixed seed: the pattern is
	// part of the workload's identity, not of the trace seed).
	rng := timing.NewRNG(0x5eed_5b3c)
	rowPtr := make([]int, n+1)
	var cols []int
	for i := 0; i < n; i++ {
		rowPtr[i] = len(cols)
		nnz := 1 + rng.Intn(2*nnzPerRow-1) // mean ≈ nnzPerRow, at least 1
		for k := 0; k < nnz; k++ {
			cols = append(cols, rng.Intn(n))
		}
	}
	rowPtr[n] = len(cols)

	p := loopir.NewProgram("SpMV")
	p.DeclareArray("A", len(cols))
	p.DeclareArray("X", n)
	p.DeclareArray("Y", n)
	p.DeclareIndexArray("Index", cols)
	p.DeclareIndexArray("D", rowPtr)

	j1, j2 := loopir.V("j1"), loopir.V("j2")
	p.Add(
		loopir.Do("j1", loopir.C(0), loopir.C(n-1),
			loopir.Read("Y", j1).WithTags(true, true),
			loopir.Read("D", j1).WithTags(false, true),
			loopir.Do("j2",
				loopir.Load("D", j1), // lower bound D(j1)
				loopir.Plus(loopir.Load("D", loopir.Plus(j1, 1)), -1), // upper bound D(j1+1)-1
				loopir.Read("Index", j2).WithTags(false, true),
				loopir.Read("A", j2).WithTags(false, true),
				loopir.Read("X", loopir.Load("Index", j2)).WithTags(true, false),
			),
			loopir.Store("Y", j1).WithTags(true, true),
		),
	)
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
