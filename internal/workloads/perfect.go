package workloads

import (
	"softcache/internal/loopir"
	"softcache/internal/timing"
)

// The Perfect-Club-style codes. Each models the trace-level profile the
// paper reports for its namesake (fig. 1, fig. 4a): small working sets, a
// sizable share of references without tags (CALL-poisoned loop bodies,
// indirect/aliased subscripts, references outside loops), and a hot
// computational kernel. The "-kernel" variants reproduce the fig. 10a
// experiment: the most time-consuming subroutine manually instrumented and
// traced alone, with the compiler limitations (calls, aliasing, bad loop
// order) removed.

func init() {
	register(Definition{
		Name:        "MDG",
		Description: "molecular-dynamics-style code: neighbour lists (indirect), call-poisoned intra-molecular loop, tagged integration",
		Build:       buildMDG,
	})
	register(Definition{
		Name:        "MDG-kernel",
		Description: "MDG hot pairwise-force loop with subscripts expanded (fig. 10a)",
		Build:       buildMDGKernel,
		Kernel:      true,
	})
	register(Definition{
		Name:        "BDN",
		Description: "PDE-style code with one badly-ordered (non-stride-1) sweep, call-poisoned boundaries and a tagged relaxation",
		Build:       buildBDN,
	})
	register(Definition{
		Name:        "BDN-kernel",
		Description: "BDN relaxation with loops re-ordered stride-1 (fig. 10a)",
		Build:       buildBDNKernel,
		Kernel:      true,
	})
	register(Definition{
		Name:        "DYF",
		Description: "dynamics-style code: large per-step streams polluting small, cyclically reused state vectors",
		Build:       buildDYF,
	})
	register(Definition{
		Name:        "DYF-kernel",
		Description: "DYF state-update loops traced alone (fig. 10a)",
		Build:       buildDYFKernel,
		Kernel:      true,
	})
	register(Definition{
		Name:        "TRF",
		Description: "transport/factorisation-style code: short stride-1 vector runs plus a small triangular factorisation",
		Build:       buildTRF,
	})
	register(Definition{
		Name:        "TRF-kernel",
		Description: "TRF vector-run and factorisation kernel traced alone (fig. 10a)",
		Build:       buildTRFKernel,
		Kernel:      true,
	})
}

// --- MDG -----------------------------------------------------------------

func mdgNeighbours(nm, deg int) []int {
	rng := timing.NewRNG(0x3d6f_aa21)
	nl := make([]int, nm*deg)
	for i := range nl {
		nl[i] = rng.Intn(nm)
	}
	return nl
}

func buildMDG(s Scale) (*loopir.Program, error) {
	nm := pick(s, 48, 400)
	deg := 12
	steps := pick(s, 2, 6)

	p := loopir.NewProgram("MDG")
	for _, a := range []string{"PX", "PY", "PZ", "FX", "FY", "FZ", "VX", "VY", "VZ"} {
		p.DeclareArray(a, nm)
	}
	p.DeclareIndexArray("NL", mdgNeighbours(nm, deg))

	i, l := loopir.V("i"), loopir.V("l")
	nlSub := loopir.Sum(loopir.SV(deg, "i"), l) // NL(deg*i + l)

	// Inter-molecular forces through the neighbour list: the NL load is
	// analysable (stride 1), the position loads are indirect — no tags.
	inter := loopir.Do("i", loopir.C(0), loopir.C(nm-1),
		loopir.Do("l", loopir.C(0), loopir.C(deg-1),
			loopir.Read("NL", nlSub),
			loopir.Read("PX", loopir.Load("NL", nlSub)),
			loopir.Read("PY", loopir.Load("NL", nlSub)),
			loopir.Read("PZ", loopir.Load("NL", nlSub)),
			loopir.Read("PX", i), // molecule's own position: temporal
			loopir.Store("FX", i),
		),
	)

	// Intra-molecular terms behind a CALL: the body is poisoned, so every
	// reference loses its tags (§2.3, no interprocedural analysis).
	intra := loopir.Do("i2", loopir.C(0), loopir.C(nm-1),
		&loopir.Call{Name: "waterintra"},
		loopir.Read("PX", loopir.V("i2")),
		loopir.Read("PY", loopir.V("i2")),
		loopir.Read("PZ", loopir.V("i2")),
		loopir.Store("FY", loopir.V("i2")),
		loopir.Store("FZ", loopir.V("i2")),
	)

	// Leapfrog integration: fully analysable.
	integ := loopir.Do("i3", loopir.C(0), loopir.C(nm-1),
		loopir.Read("VX", loopir.V("i3")),
		loopir.Read("FX", loopir.V("i3")),
		loopir.Store("VX", loopir.V("i3")),
		loopir.Read("PX", loopir.V("i3")),
		loopir.Store("PX", loopir.V("i3")),
	)

	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), inter, intra, integ))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func buildMDGKernel(s Scale) (*loopir.Program, error) {
	nm := pick(s, 64, 480)
	w := 16 // interaction window after subscript expansion
	steps := pick(s, 2, 6)

	p := loopir.NewProgram("MDG-kernel")
	for _, a := range []string{"PX", "PY", "PZ", "FX"} {
		p.DeclareArray(a, nm+w+1)
	}
	i, j := loopir.V("i"), loopir.V("j")

	// The pairwise loop with the indirection replaced by a dense window:
	// every reference is analysable and tagged.
	pair := loopir.Do("i", loopir.C(0), loopir.C(nm-1),
		loopir.Do("j", loopir.Plus(i, 1), loopir.Plus(i, w),
			loopir.Read("PX", i), // j absent: temporal
			loopir.Read("PX", j), // i absent: temporal; stride 1: spatial
			loopir.Read("PY", j),
			loopir.Read("PZ", j),
			loopir.Read("FX", i),
			loopir.Store("FX", i),
		),
	)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1), pair))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// --- BDN -----------------------------------------------------------------

func buildBDN(s Scale) (*loopir.Program, error) {
	n := pick(s, 48, 144)
	iters := pick(s, 1, 2)

	p := loopir.NewProgram("BDN")
	p.DeclareArray("G", n, n)
	p.DeclareArray("H", n, n)
	p.DeclareArray("K", n, n)
	p.DeclareArray("BND", 4*n)

	i, j := loopir.V("i"), loopir.V("j")

	// Badly-ordered sweep: innermost j walks G with stride n — the
	// coefficient is >= 4, so no spatial tag; no reuse either.
	badSweep := loopir.Do("i", loopir.C(0), loopir.C(n-1),
		loopir.Do("j", loopir.C(0), loopir.C(n-1),
			loopir.Read("G", i, j),
			loopir.Store("H", i, j),
		),
	)

	// Boundary handling with a CALL: poisoned.
	boundary := loopir.Do("b", loopir.C(0), loopir.C(4*n-1),
		&loopir.Call{Name: "applybc"},
		loopir.Read("BND", loopir.V("b")),
		loopir.Store("BND", loopir.V("b")),
	)

	// Stride-1 relaxation: spatial everywhere, temporal only on the
	// G(i2)/G(i2+1) group pair — the K coefficient stream and the H
	// result carry just the spatial tag, keeping BDN's temporal share
	// modest as in fig. 4a.
	relax := loopir.Do("j2", loopir.C(0), loopir.C(n-1),
		loopir.Do("i2", loopir.C(1), loopir.C(n-2),
			loopir.Read("G", loopir.V("i2"), loopir.V("j2")),
			loopir.Read("G", loopir.Plus(loopir.V("i2"), 1), loopir.V("j2")),
			loopir.Read("K", loopir.V("i2"), loopir.V("j2")),
			loopir.Store("H", loopir.V("i2"), loopir.V("j2")),
		),
	)

	p.Add(loopir.Driver("it", loopir.C(0), loopir.C(iters-1), badSweep, boundary, relax))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func buildBDNKernel(s Scale) (*loopir.Program, error) {
	n := pick(s, 48, 160)
	iters := pick(s, 2, 3)

	p := loopir.NewProgram("BDN-kernel")
	p.DeclareArray("G", n, n)
	p.DeclareArray("H", n, n)

	// The same sweeps with loops interchanged to stride-1 order and the
	// boundary call inlined away: everything is tagged.
	sweep := loopir.Do("j", loopir.C(0), loopir.C(n-1),
		loopir.Do("i", loopir.C(0), loopir.C(n-1),
			loopir.Read("G", loopir.V("i"), loopir.V("j")),
			loopir.Store("H", loopir.V("i"), loopir.V("j")),
		),
	)
	relax := loopir.Do("j2", loopir.C(0), loopir.C(n-1),
		loopir.Do("i2", loopir.C(1), loopir.C(n-2),
			loopir.Read("G", loopir.V("i2"), loopir.V("j2")),
			loopir.Read("G", loopir.Plus(loopir.V("i2"), 1), loopir.V("j2")),
			loopir.Read("G", loopir.Plus(loopir.V("i2"), -1), loopir.V("j2")),
			loopir.Read("H", loopir.V("i2"), loopir.V("j2")),
			loopir.Store("H", loopir.V("i2"), loopir.V("j2")),
		),
	)
	p.Add(loopir.Driver("it", loopir.C(0), loopir.C(iters-1), sweep, relax))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// --- DYF -----------------------------------------------------------------

// dyfBody builds the core DYF phase structure shared by the full and
// kernel variants: per chunk, a slice of a large per-step stream pollutes
// the cache, then the small state vectors are swept again. The state
// references are temporal by self-dependence (the chunk variable is absent
// from their subscripts) and the reuse distance — one stream chunk — is
// longer than a line's cache lifetime: the cyclic-reuse pattern where plain
// LRU fails and the bounce-back mechanism shines (§2.2).
func dyfBody(nbig, chunk, nsm int) loopir.Stmt {
	t, i, k := loopir.V("t"), loopir.V("i"), loopir.V("k")
	nchunk := nbig / chunk
	stream := loopir.Do("i", loopir.C(0), loopir.C(chunk-1),
		// BIG(i + c*chunk, t): fresh data per chunk and step — spatial
		// only.
		loopir.Read("BIG", loopir.Sum(i, loopir.SV(chunk, "c")), t),
	)
	state := loopir.Do("k", loopir.C(0), loopir.C(nsm-1),
		loopir.Read("S1", k),
		loopir.Read("S2", k),
		loopir.Read("S3", k),
		loopir.Store("S1", k),
	)
	return loopir.Do("c", loopir.C(0), loopir.C(nchunk-1), stream, state)
}

func buildDYF(s Scale) (*loopir.Program, error) {
	steps := pick(s, 3, 6)
	nbig := pick(s, 1024, 4096)
	chunk := pick(s, 256, 512)
	nsm := pick(s, 96, 256)

	p := loopir.NewProgram("DYF")
	p.DeclareArray("BIG", nbig, steps)
	for _, a := range []string{"S1", "S2", "S3"} {
		p.DeclareArray(a, nsm)
	}
	p.DeclareArray("AUX", 2*nsm)

	// A call-poisoned control loop keeps a realistic untagged share.
	control := loopir.Do("w", loopir.C(0), loopir.C(2*nsm-1),
		&loopir.Call{Name: "control"},
		loopir.Read("AUX", loopir.V("w")),
		loopir.Store("AUX", loopir.V("w")),
	)
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1),
		dyfBody(nbig, chunk, nsm), control))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func buildDYFKernel(s Scale) (*loopir.Program, error) {
	steps := pick(s, 3, 8)
	nbig := pick(s, 1024, 4096)
	chunk := pick(s, 256, 512)
	nsm := pick(s, 96, 256)

	p := loopir.NewProgram("DYF-kernel")
	p.DeclareArray("BIG", nbig, steps)
	for _, a := range []string{"S1", "S2", "S3"} {
		p.DeclareArray(a, nsm)
	}
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(steps-1),
		dyfBody(nbig, chunk, nsm)))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// --- TRF -----------------------------------------------------------------

func buildTRF(s Scale) (*loopir.Program, error) {
	const runLen, runPad = 12, 16 // short stride-1 runs: 96 B, deliberately not a multiple
	// of the 64 B virtual line, so virtual fills over-fetch a little —
	// the paper notes TRF is the one code whose traffic grows (fig. 7a).
	m := pick(s, 96, 800)
	nf := pick(s, 12, 28)
	reps := pick(s, 2, 4)

	p := loopir.NewProgram("TRF")
	p.DeclareArray("R", runPad, m) // padded rows: the tail of a virtual
	// fill lands in the unused pad, so traffic grows slightly under Soft
	p.DeclareArray("S", runPad, m)
	p.DeclareArray("F", nf, nf)
	p.DeclareArray("WRK", 2*m)

	i, j, k := loopir.V("i"), loopir.V("j"), loopir.V("k")

	// Vector-run phase: spatial, no reuse.
	runs := loopir.Do("j", loopir.C(0), loopir.C(m-1),
		loopir.Do("i", loopir.C(0), loopir.C(runLen-1),
			loopir.Read("R", i, j),
			loopir.Store("S", i, j),
		),
	)

	// Small triangular factorisation (hot kernel): tags as in LU.
	factor := loopir.Do("k", loopir.C(0), loopir.C(nf-2),
		loopir.Do("j2", loopir.Plus(k, 1), loopir.C(nf-1),
			loopir.Do("i2", loopir.Plus(k, 1), loopir.C(nf-1),
				loopir.Read("F", loopir.V("i2"), loopir.V("j2")),
				loopir.Read("F", loopir.V("i2"), k),
				loopir.Read("F", k, loopir.V("j2")),
				loopir.Store("F", loopir.V("i2"), loopir.V("j2")),
			),
		),
	)

	// Call-poisoned workspace shuffle.
	shuffle := loopir.Do("w", loopir.C(0), loopir.C(2*m-1),
		&loopir.Call{Name: "pack"},
		loopir.Read("WRK", loopir.V("w")),
		loopir.Store("WRK", loopir.V("w")),
	)

	// The factorisation runs once; the transport sweeps repeat. This
	// keeps TRF's profile spatial-dominated (fig. 4a: the spatial bit is
	// set in well over half of its entries, the temporal bit in few).
	p.Add(factor)
	p.Add(loopir.Driver("rep", loopir.C(0), loopir.C(reps-1), runs, shuffle))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func buildTRFKernel(s Scale) (*loopir.Program, error) {
	const runLen, runPad = 12, 16
	m := pick(s, 64, 420)
	nf := pick(s, 24, 52)
	reps := pick(s, 2, 4)

	p := loopir.NewProgram("TRF-kernel")
	p.DeclareArray("R", runPad, m)
	p.DeclareArray("S", runPad, m)
	p.DeclareArray("F", nf, nf)

	i, j, k := loopir.V("i"), loopir.V("j"), loopir.V("k")
	runs := loopir.Do("j", loopir.C(0), loopir.C(m-1),
		loopir.Do("i", loopir.C(0), loopir.C(runLen-1),
			loopir.Read("R", i, j),
			loopir.Store("S", i, j),
		),
	)
	factor := loopir.Do("k", loopir.C(0), loopir.C(nf-2),
		loopir.Do("j2", loopir.Plus(k, 1), loopir.C(nf-1),
			loopir.Do("i2", loopir.Plus(k, 1), loopir.C(nf-1),
				loopir.Read("F", loopir.V("i2"), loopir.V("j2")),
				loopir.Read("F", loopir.V("i2"), k),
				loopir.Read("F", k, loopir.V("j2")),
				loopir.Store("F", loopir.V("i2"), loopir.V("j2")),
			),
		),
	)
	p.Add(loopir.Driver("rep", loopir.C(0), loopir.C(reps-1), runs, factor))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
