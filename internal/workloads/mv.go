package workloads

import "softcache/internal/loopir"

func init() {
	register(Definition{
		Name:        "MV",
		Description: "dense matrix-vector multiply (paper §2.2 motivating loop)",
		Build:       buildMV,
	})
}

// buildMV is the paper's matrix-vector loop:
//
//	DO j1 = 0,N-1
//	  reg = Y(j1)
//	  DO j2 = 0,N-1
//	    reg += A(j2,j1) * X(j2)
//	  ENDDO
//	  Y(j1) = reg
//	ENDDO
//
// N is chosen so that X fits in the 8 KiB cache (no capacity miss for X
// alone) but each column of A sweeps most of the cache, flushing X between
// its reuses — the pollution scenario §2.2 analyses. The locality analyser
// tags A spatial-only, X temporal+spatial, Y temporal+spatial, exactly as
// the paper describes.
func buildMV(s Scale) (*loopir.Program, error) {
	n := pick(s, 96, 768)
	p := loopir.NewProgram("MV")
	p.DeclareArray("A", n, n)
	p.DeclareArray("X", n)
	p.DeclareArray("Y", n)
	p.Add(
		loopir.Do("j1", loopir.C(0), loopir.C(n-1),
			loopir.Read("Y", loopir.V("j1")),
			loopir.Do("j2", loopir.C(0), loopir.C(n-1),
				loopir.Read("A", loopir.V("j2"), loopir.V("j1")),
				loopir.Read("X", loopir.V("j2")),
			),
			loopir.Store("Y", loopir.V("j1")),
		),
	)
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
