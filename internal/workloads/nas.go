package workloads

import (
	"softcache/internal/loopir"
	"softcache/internal/timing"
)

func init() {
	register(Definition{
		Name:        "NAS",
		Description: "NAS-CG-style iteration: sparse matrix-vector product plus vector updates",
		Build:       buildNAS,
	})
}

// buildNAS models one conjugate-gradient-style iteration in the spirit of
// the NAS CG benchmark: a sparse matrix-vector product (indirect accesses,
// user-directed tags as in §4.1) followed by analysable dense vector
// updates (daxpy-like, dot products). The dense phases carry full
// compiler-derived tags, the sparse phase only directives — giving NAS the
// mid-range tag fractions of fig. 4a and the dominant vector-access misses
// §3.2 attributes to it.
func buildNAS(s Scale) (*loopir.Program, error) {
	n := pick(s, 200, 1400)
	nnzPerRow := pick(s, 8, 16)
	iters := pick(s, 2, 4)

	rng := timing.NewRNG(0x0a5c_91d7)
	rowPtr := make([]int, n+1)
	var cols []int
	for i := 0; i < n; i++ {
		rowPtr[i] = len(cols)
		nnz := 1 + rng.Intn(2*nnzPerRow-1)
		for k := 0; k < nnz; k++ {
			cols = append(cols, rng.Intn(n))
		}
	}
	rowPtr[n] = len(cols)

	p := loopir.NewProgram("NAS")
	p.DeclareArray("Aval", len(cols))
	for _, a := range []string{"Pvec", "Qvec", "Rvec", "Xvec", "Zvec"} {
		p.DeclareArray(a, n)
	}
	p.DeclareIndexArray("Col", cols)
	p.DeclareIndexArray("Row", rowPtr)

	i, j := loopir.V("i"), loopir.V("j")

	spmv := loopir.Do("i", loopir.C(0), loopir.C(n-1),
		loopir.Read("Row", i).WithTags(false, true),
		loopir.Do("j",
			loopir.Load("Row", i),
			loopir.Plus(loopir.Load("Row", loopir.Plus(i, 1)), -1),
			loopir.Read("Col", j).WithTags(false, true),
			loopir.Read("Aval", j).WithTags(false, true),
			loopir.Read("Pvec", loopir.Load("Col", j)).WithTags(true, false),
		),
		loopir.Store("Qvec", i).WithTags(false, true),
	)

	// rho = r.r ; alpha scaling of x and r ; p update — dense, analysable.
	dots := loopir.Do("i2", loopir.C(0), loopir.C(n-1),
		loopir.Read("Rvec", loopir.V("i2")),
		loopir.Read("Rvec", loopir.V("i2")),
	)
	axpy1 := loopir.Do("i3", loopir.C(0), loopir.C(n-1),
		loopir.Read("Xvec", loopir.V("i3")),
		loopir.Read("Pvec", loopir.V("i3")),
		loopir.Store("Xvec", loopir.V("i3")),
	)
	axpy2 := loopir.Do("i4", loopir.C(0), loopir.C(n-1),
		loopir.Read("Rvec", loopir.V("i4")),
		loopir.Read("Qvec", loopir.V("i4")),
		loopir.Store("Rvec", loopir.V("i4")),
	)
	pupd := loopir.Do("i5", loopir.C(0), loopir.C(n-1),
		loopir.Read("Rvec", loopir.V("i5")),
		loopir.Read("Pvec", loopir.V("i5")),
		loopir.Store("Pvec", loopir.V("i5")),
		loopir.Store("Zvec", loopir.V("i5")),
	)

	p.Add(loopir.Do("it", loopir.C(0), loopir.C(iters-1), spmv, dots, axpy1, axpy2, pupd))
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
