package workloads

import (
	"testing"

	"softcache/internal/locality"
	"softcache/internal/metrics"
)

func TestRegistryLists(t *testing.T) {
	if len(Benchmarks()) != 9 {
		t.Fatalf("benchmarks = %v", Benchmarks())
	}
	if len(Kernels()) != 7 {
		t.Fatalf("kernels = %v", Kernels())
	}
	for _, n := range append(Benchmarks(), Kernels()...) {
		if _, err := Get(n); err != nil {
			t.Fatalf("missing workload %s: %v", n, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload should error")
	}
	names := Names()
	if len(names) < 16 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names must be sorted")
		}
	}
}

// TestAllWorkloadsGenerate builds and generates every registered workload
// at test scale, asserting basic trace sanity.
func TestAllWorkloadsGenerate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := Trace(name, ScaleTest, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() < 1000 {
				t.Fatalf("trace too small: %d records", tr.Len())
			}
			if tr.Len() > 2_000_000 {
				t.Fatalf("test-scale trace too large: %d records", tr.Len())
			}
			if tr.Name == "" {
				t.Fatal("trace must carry the workload name")
			}
			// Addresses must be 4-byte aligned at least and non-zero.
			for i, r := range tr.Records {
				if r.Addr == 0 || r.Addr%4 != 0 {
					t.Fatalf("record %d has implausible address %#x", i, r.Addr)
				}
				if r.Size != 4 && r.Size != 8 {
					t.Fatalf("record %d has size %d", i, r.Size)
				}
			}
		})
	}
}

// TestTraceDeterminism: same name+scale+seed gives the identical trace.
func TestTraceDeterminism(t *testing.T) {
	a, err := Trace("SpMV", ScaleTest, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Trace("SpMV", ScaleTest, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("records differ")
		}
	}
}

// TestTagProfiles asserts the fig. 4a shape constraints each workload was
// designed to satisfy.
func TestTagProfiles(t *testing.T) {
	frac := func(name string) [4]float64 {
		tr, err := Trace(name, ScaleTest, 1)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.TagFractions(tr)
	}
	// MDG: large untagged share (indirect neighbour lists + calls).
	if f := frac("MDG"); f[0] < 0.30 {
		t.Errorf("MDG untagged share %.2f, want >= 0.30", f[0])
	}
	// DYF: the most temporal of the Perfect-style codes.
	dyf := frac("DYF")
	for _, other := range []string{"MDG", "BDN", "TRF"} {
		o := frac(other)
		if dyf[2]+dyf[3] <= o[2]+o[3] {
			t.Errorf("DYF temporal share %.2f not above %s's %.2f",
				dyf[2]+dyf[3], other, o[2]+o[3])
		}
	}
	// TRF: spatial-dominated.
	if f := frac("TRF"); f[1]+f[3] < 0.50 {
		t.Errorf("TRF spatial share %.2f, want >= 0.50", f[1]+f[3])
	}
	// MV: no untagged references at all (fully analysable).
	if f := frac("MV"); f[0] > 0.001 {
		t.Errorf("MV untagged share %.2f, want 0", f[0])
	}
	// Kernels are fully analysable; everything is tagged except ARC's
	// deliberately strided direction (analysable yet not taggable — the
	// spatial rule rejects its large stride).
	for _, k := range Kernels() {
		limit := 0.02
		if k == "ARC-kernel" {
			limit = 0.20
		}
		if f := frac(k); f[0] > limit {
			t.Errorf("%s untagged share %.2f, want <= %.2f", k, f[0], limit)
		}
	}
}

// TestMVMatchesPaperTagging: the MV loop must reproduce the paper's §2.2
// tag assignment (A spatial-only, X and Y temporal+spatial).
func TestMVMatchesPaperTagging(t *testing.T) {
	p, err := BuildProgram("MV", ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tags, err := locality.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := locality.Summarize(tags)
	if sum.Sites != 4 {
		t.Fatalf("MV should have 4 reference sites, got %d", sum.Sites)
	}
	if sum.TemporalSites != 3 || sum.SpatialSites != 4 {
		t.Fatalf("MV tagging: %+v (want 3 temporal, 4 spatial)", sum)
	}
}

func TestBlockedMVValidation(t *testing.T) {
	if _, err := BlockedMV(ScaleTest, 7); err == nil {
		t.Fatal("non-divisor block must be rejected")
	}
	if _, err := BlockedMV(ScaleTest, 0); err == nil {
		t.Fatal("zero block must be rejected")
	}
	p, err := BlockedMV(ScaleTest, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name == "" {
		t.Fatal("program unnamed")
	}
}

func TestBlockedMMValidation(t *testing.T) {
	n, _ := BlockedMMSize(ScaleTest)
	if _, err := BlockedMM(ScaleTest, n-1, false); err == nil {
		t.Fatal("leading dimension below order must be rejected")
	}
	for _, copying := range []bool{false, true} {
		p, err := BlockedMM(ScaleTest, n+4, copying)
		if err != nil {
			t.Fatal(err)
		}
		if copying && p.Arrays["TA"] == nil {
			t.Fatal("copy variant must declare the local-memory array")
		}
		if !copying && p.Arrays["TA"] != nil {
			t.Fatal("no-copy variant must not declare TA")
		}
	}
}

// TestBlockedMMCopyTags: the local-memory array must be temporal so the
// bounce-back cache protects it during refills (§4.3).
func TestBlockedMMCopyTags(t *testing.T) {
	p, err := BlockedMM(ScaleTest, 30, true)
	if err != nil {
		t.Fatal(err)
	}
	tags, err := locality.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range p.Accesses() {
		if a.Array == "TA" && !a.Write {
			if !tags[a.ID].Temporal {
				t.Fatal("TA compute reference must be temporal")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no TA read found")
	}
}

func TestScaleString(t *testing.T) {
	if ScaleTest.String() != "test" || ScalePaper.String() != "paper" {
		t.Fatal("Scale.String broken")
	}
}

// TestPaperScaleGeneration builds every workload at paper scale — the
// figure benches depend on these not erroring and staying within sane
// bounds. Guarded by -short for quick local runs.
func TestPaperScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation is slow")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := Trace(name, ScalePaper, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() < 50_000 {
				t.Fatalf("paper-scale trace suspiciously small: %d", tr.Len())
			}
			if tr.Len() > 8_000_000 {
				t.Fatalf("paper-scale trace too large: %d", tr.Len())
			}
		})
	}
}
