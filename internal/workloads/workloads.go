// Package workloads defines the benchmark suite of the paper as loopir
// programs: the two numerical primitives MV and SpMV, Livermore-loop-style
// LIV, NAS- and Slalom-style solvers, and Perfect-Club-style dusty-deck
// codes (MDG, BDN, DYF, TRF, plus ADM, ARC, FLO for fig. 10a).
//
// The original Fortran sources are not redistributable, so each workload is
// a synthetic kernel shaped to match the properties the paper reports for
// its namesake: working-set size relative to the 8 KiB cache, stride
// pattern, fraction of references carrying temporal/spatial tags
// (fig. 4a), reuse-distance profile (fig. 1a) and vector lengths
// (fig. 1b). DESIGN.md documents this substitution. Everything the
// simulator observes — the tagged reference stream — is therefore
// structurally faithful even though the arithmetic is not.
//
// Every workload exists at two scales: ScaleTest (small, for unit tests)
// and ScalePaper (full-size, for the figure benches).
package workloads

import (
	"fmt"
	"sort"

	"softcache/internal/loopir"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
)

// Scale selects workload sizing.
type Scale int

const (
	// ScaleTest is small enough for unit tests (tens of thousands of
	// references).
	ScaleTest Scale = iota
	// ScalePaper is the figure-bench size (hundreds of thousands to a few
	// million references).
	ScalePaper
)

func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "test"
}

// Definition is one registered workload.
type Definition struct {
	Name        string
	Description string
	// Build constructs the loopir program at the given scale.
	Build func(Scale) (*loopir.Program, error)
	// Kernel marks the fig. 10a "most time-consuming subroutine only"
	// variants.
	Kernel bool
}

var registry = map[string]Definition{}

// benchmarkOrder is the paper's x-axis order for the 9 main benchmarks.
var benchmarkOrder = []string{"MDG", "BDN", "DYF", "TRF", "NAS", "Slalom", "LIV", "MV", "SpMV"}

// kernelOrder is the fig. 10a x-axis order.
var kernelOrder = []string{"ADM", "MDG", "BDN", "DYF", "ARC", "FLO", "TRF"}

func register(d Definition) {
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate workload %q", d.Name))
	}
	registry[d.Name] = d
}

// Get returns a workload definition by name.
func Get(name string) (Definition, error) {
	d, ok := registry[name]
	if !ok {
		return Definition{}, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return d, nil
}

// Names returns all registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Benchmarks returns the paper's 9 main benchmarks in figure order.
func Benchmarks() []string { return append([]string(nil), benchmarkOrder...) }

// Kernels returns the fig. 10a hot-subroutine variants in figure order
// (registered under the base code name + "-kernel").
func Kernels() []string {
	out := make([]string, len(kernelOrder))
	for i, n := range kernelOrder {
		out[i] = n + "-kernel"
	}
	return out
}

// BuildProgram builds the named workload's program at the given scale.
func BuildProgram(name string, scale Scale) (*loopir.Program, error) {
	d, err := Get(name)
	if err != nil {
		return nil, err
	}
	p, err := d.Build(scale)
	if err != nil {
		return nil, fmt.Errorf("workloads: building %s: %w", name, err)
	}
	return p, nil
}

// Trace builds the named workload and generates its tagged trace with the
// given seed (the seed drives the inter-reference gap sampling and any
// randomised data inside the workload uses its own fixed seed, so traces
// are reproducible).
func Trace(name string, scale Scale, seed uint64) (*trace.Trace, error) {
	p, err := BuildProgram(name, scale)
	if err != nil {
		return nil, err
	}
	t, err := tracegen.Generate(p, tracegen.Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("workloads: generating %s: %w", name, err)
	}
	return t, nil
}

// pick returns tv at ScaleTest and pv at ScalePaper.
func pick(s Scale, tv, pv int) int {
	if s == ScalePaper {
		return pv
	}
	return tv
}
