package tracegen

import (
	"testing"

	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/timing"
	"softcache/internal/trace"
)

// buildNest returns DO i=0..2 / DO j=0..1 { load A(j,i); store X(j) } over
// A(2,3) and X(2).
func buildNest() *loopir.Program {
	p := loopir.NewProgram("nest")
	p.DeclareArray("A", 2, 3)
	p.DeclareArray("X", 2)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(2),
		loopir.Do("j", loopir.C(0), loopir.C(1),
			loopir.Read("A", loopir.V("j"), loopir.V("i")),
			loopir.Store("X", loopir.V("j")),
		),
	))
	return p
}

func TestAddressesAndOrder(t *testing.T) {
	p := buildNest()
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 12 { // 3*2*2 references
		t.Fatalf("len = %d, want 12", tr.Len())
	}
	aBase := p.Arrays["A"].Base
	xBase := p.Arrays["X"].Base
	// Expected sequence of (array offset) pairs, column-major A(j,i) =
	// j + 2i elements of 8 bytes.
	wantAddrs := []uint64{
		aBase + 0, xBase + 0, // i=0 j=0
		aBase + 8, xBase + 8, // i=0 j=1
		aBase + 16, xBase + 0, // i=1 j=0
		aBase + 24, xBase + 8,
		aBase + 32, xBase + 0,
		aBase + 40, xBase + 8,
	}
	for i, want := range wantAddrs {
		if got := tr.Records[i].Addr; got != want {
			t.Fatalf("record %d addr = %#x, want %#x", i, got, want)
		}
	}
	// Directions: even records are loads, odd are stores.
	for i, r := range tr.Records {
		if r.Write != (i%2 == 1) {
			t.Fatalf("record %d write = %v", i, r.Write)
		}
	}
	// RefIDs map to the two static sites.
	if tr.Records[0].RefID == tr.Records[1].RefID {
		t.Fatal("distinct sites must have distinct RefIDs")
	}
	if tr.Records[0].RefID != tr.Records[2].RefID {
		t.Fatal("the same site must keep its RefID")
	}
}

func TestDeterminismAndSeeds(t *testing.T) {
	a, err := Generate(buildNest(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(buildNest(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same seed must reproduce the trace bit-for-bit")
		}
	}
	c, err := Generate(buildNest(), Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Addresses identical, gaps (usually) differ.
	diff := false
	for i := range a.Records {
		if a.Records[i].Addr != c.Records[i].Addr {
			t.Fatal("addresses must not depend on the seed")
		}
		if a.Records[i].Gap != c.Records[i].Gap {
			diff = true
		}
	}
	if !diff {
		t.Fatal("gap streams of different seeds should differ")
	}
}

func TestFirstGapZero(t *testing.T) {
	tr, err := Generate(buildNest(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].Gap != 0 {
		t.Fatalf("first gap = %d, want 0", tr.Records[0].Gap)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Records[i].Gap < 1 {
			t.Fatalf("gap %d = %d, want >= 1", i, tr.Records[i].Gap)
		}
	}
}

func TestTagsAppearInTrace(t *testing.T) {
	p := buildNest()
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// X(j) is temporal (i absent) + spatial; A(j,i) spatial only.
	for i, r := range tr.Records {
		if i%2 == 1 { // X store
			if !r.Temporal || !r.Spatial {
				t.Fatalf("X record %d tags = %+v", i, r)
			}
		} else { // A load
			if r.Temporal || !r.Spatial {
				t.Fatalf("A record %d tags = %+v", i, r)
			}
		}
	}
}

func TestGenerateTaggedOverride(t *testing.T) {
	p := buildNest()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Force everything untagged.
	tr, err := GenerateTagged(p, locality.Tagging{}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := tr.CountTags()
	if c.None != tr.Len() {
		t.Fatalf("explicit empty tagging should yield untagged trace: %+v", c)
	}
}

func TestDataDependentBounds(t *testing.T) {
	p := loopir.NewProgram("csr")
	p.DeclareArray("A", 6)
	p.DeclareData("D", []int{0, 2, 6})
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(1),
		loopir.Do("j", loopir.Load("D", loopir.V("i")),
			loopir.Plus(loopir.Load("D", loopir.Plus(loopir.V("i"), 1)), -1),
			loopir.Read("A", loopir.V("j")),
		),
	))
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 6 { // rows of 2 and 4 elements
		t.Fatalf("len = %d, want 6", tr.Len())
	}
	base := p.Arrays["A"].Base
	for i, r := range tr.Records {
		if r.Addr != base+uint64(8*i) {
			t.Fatalf("record %d addr = %#x", i, r.Addr)
		}
	}
}

func TestIndirectSubscript(t *testing.T) {
	p := loopir.NewProgram("ind")
	p.DeclareArray("X", 10)
	p.DeclareData("Idx", []int{7, 3, 9})
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(2),
		loopir.Read("X", loopir.Load("Idx", loopir.V("i"))),
	))
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := p.Arrays["X"].Base
	want := []uint64{base + 7*8, base + 3*8, base + 9*8}
	for i, w := range want {
		if tr.Records[i].Addr != w {
			t.Fatalf("record %d addr = %#x, want %#x", i, tr.Records[i].Addr, w)
		}
	}
}

func TestOutOfRangeSubscript(t *testing.T) {
	p := loopir.NewProgram("oob")
	p.DeclareArray("X", 4)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(10),
		loopir.Read("X", loopir.V("i")),
	))
	if _, err := Generate(p, Options{Seed: 1}); err == nil {
		t.Fatal("out-of-range subscript must be reported")
	}
}

func TestOutOfRangeIndirectIndex(t *testing.T) {
	p := loopir.NewProgram("oob2")
	p.DeclareArray("X", 10)
	p.DeclareData("Idx", []int{0})
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(5),
		loopir.Read("X", loopir.Load("Idx", loopir.V("i"))),
	))
	if _, err := Generate(p, Options{Seed: 1}); err == nil {
		t.Fatal("out-of-range indirect index must be reported")
	}
}

func TestMaxRecordsGuard(t *testing.T) {
	p := loopir.NewProgram("big")
	p.DeclareArray("X", 10)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(9),
		loopir.Do("j", loopir.C(0), loopir.C(9),
			loopir.Read("X", loopir.V("j")),
		),
	))
	if _, err := Generate(p, Options{Seed: 1, MaxRecords: 50}); err == nil {
		t.Fatal("MaxRecords must abort oversized generation")
	}
}

func TestEmptyLoopBody(t *testing.T) {
	p := loopir.NewProgram("empty")
	p.DeclareArray("X", 4)
	p.Add(loopir.Do("i", loopir.C(3), loopir.C(0), // empty range
		loopir.Read("X", loopir.V("i")),
	))
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("empty range generated %d records", tr.Len())
	}
}

func TestCustomGapModel(t *testing.T) {
	tr, err := Generate(buildNest(), Options{Seed: 1, Gaps: timing.Constant(4)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Records[i].Gap != 4 {
			t.Fatalf("gap = %d, want 4", tr.Records[i].Gap)
		}
	}
}

func TestStepLoop(t *testing.T) {
	p := loopir.NewProgram("step")
	p.DeclareArray("X", 16)
	p.Add(loopir.DoStep("i", loopir.C(0), loopir.C(15), 4,
		loopir.Read("X", loopir.V("i")),
	))
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	base := p.Arrays["X"].Base
	for i, r := range tr.Records {
		if r.Addr != base+uint64(32*i) {
			t.Fatalf("record %d addr = %#x", i, r.Addr)
		}
	}
}

func TestPrefetchStatementEmitsRecords(t *testing.T) {
	p := loopir.NewProgram("pf")
	p.DeclareArray("X", 16)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(15),
		loopir.Read("X", loopir.V("i")),
		loopir.PrefetchOf("X", loopir.Plus(loopir.V("i"), 4)),
	))
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	demand, prefetch := 0, 0
	for _, r := range tr.Records {
		if r.SoftwarePrefetch {
			prefetch++
			if r.Write {
				t.Fatal("prefetch records are not stores")
			}
		} else {
			demand++
		}
	}
	if demand != 16 {
		t.Fatalf("demand records = %d, want 16", demand)
	}
	// i+4 exceeds the array for i in [12,15]: those prefetches are
	// dropped silently (non-faulting), so only 12 survive.
	if prefetch != 12 {
		t.Fatalf("prefetch records = %d, want 12", prefetch)
	}
}

func TestVirtualHintInGeneratedTrace(t *testing.T) {
	// A long stride-1 stream gets the maximum length hint.
	p := loopir.NewProgram("vh")
	p.DeclareArray("X", 512)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(511),
		loopir.Read("X", loopir.V("i")),
	))
	tr, err := Generate(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Records {
		if !r.Spatial {
			t.Fatalf("record %d not spatial", i)
		}
		if got := trace.VirtualHintBytes(r.VirtualHint); got != 256 {
			t.Fatalf("record %d hint = %d bytes, want 256", i, got)
		}
	}
}
