// Package tracegen executes a loopir program and emits the tagged memory
// reference trace, reproducing the paper's source-level tracing scheme
// (§3.1): every array reference in the source becomes a trace entry carrying
// the address, direction, the temporal/spatial bits resolved by the
// locality analysis, and a time gap drawn from the fig. 4b distribution at
// generation time (so repeated simulations of one trace are identical).
//
// The program is first compiled to a small closure tree with loop variables
// held in integer slots, which keeps generation fast enough for
// multi-million-reference traces.
package tracegen

import (
	"fmt"

	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/timing"
	"softcache/internal/trace"
)

// Options configure trace generation.
type Options struct {
	// Seed drives the gap sampler; the same seed yields the same trace.
	Seed uint64
	// Gaps is the inter-reference time model; nil uses the paper's
	// fig. 4b distribution.
	Gaps *timing.GapModel
	// MaxRecords aborts generation beyond this many records, guarding
	// against mis-sized workloads; 0 means the default of 64M.
	MaxRecords int
}

const defaultMaxRecords = 64 << 20

// Generate analyses the program (unless a tagging is supplied) and runs it.
func Generate(p *loopir.Program, opts Options) (*trace.Trace, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	tags, err := locality.Analyze(p)
	if err != nil {
		return nil, err
	}
	return GenerateTagged(p, tags, opts)
}

// GenerateTagged runs the program with an explicit tagging (useful to
// compare the analyser's tags against hand tags, or to strip tags at the
// source level).
func GenerateTagged(p *loopir.Program, tags locality.Tagging, opts Options) (*trace.Trace, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	if opts.Gaps == nil {
		opts.Gaps = timing.PaperGapModel()
	}
	if opts.MaxRecords == 0 {
		opts.MaxRecords = defaultMaxRecords
	}
	g := &generator{
		prog:  p,
		tags:  tags,
		rng:   timing.NewRNG(opts.Seed),
		gaps:  opts.Gaps,
		max:   opts.MaxRecords,
		out:   &trace.Trace{Name: p.Name},
		slots: map[string]int{},
	}
	seq, err := g.compileBody(p.Body)
	if err != nil {
		return nil, err
	}
	g.env = make([]int, len(g.slots))
	if err := seq(g); err != nil {
		return nil, err
	}
	return g.out, nil
}

// generator is the execution context.
type generator struct {
	prog  *loopir.Program
	tags  locality.Tagging
	rng   *timing.RNG
	gaps  *timing.GapModel
	max   int
	out   *trace.Trace
	slots map[string]int // loop variable -> env slot
	env   []int
	first bool
}

// action is a compiled statement: it executes against the generator state.
type action func(*generator) error

// valueFn evaluates a compiled subscript against the environment.
type valueFn func(*generator) (int, error)

func (g *generator) slot(v string) int {
	if s, ok := g.slots[v]; ok {
		return s
	}
	s := len(g.slots)
	g.slots[v] = s
	return s
}

// compileSub turns a subscript into an evaluator. Unknown variables were
// rejected by Finalize, so slot resolution cannot fail here.
func (g *generator) compileSub(s loopir.Subscript) valueFn {
	type term struct{ slot, coef int }
	terms := make([]term, 0, len(s.Terms))
	for _, t := range s.Terms {
		terms = append(terms, term{slot: g.slot(t.Var), coef: t.Coef})
	}
	c := s.Const
	if s.Ind == nil {
		return func(g *generator) (int, error) {
			v := c
			for _, t := range terms {
				v += t.coef * g.env[t.slot]
			}
			return v, nil
		}
	}
	data := g.prog.Data[s.Ind.Array]
	name := s.Ind.Array
	idx := g.compileSub(s.Ind.Sub)
	return func(g *generator) (int, error) {
		v := c
		for _, t := range terms {
			v += t.coef * g.env[t.slot]
		}
		i, err := idx(g)
		if err != nil {
			return 0, err
		}
		if i < 0 || i >= len(data) {
			return 0, fmt.Errorf("tracegen: index %d out of range for data array %s (len %d)", i, name, len(data))
		}
		return v + data[i], nil
	}
}

func (g *generator) compileBody(body []loopir.Stmt) (action, error) {
	actions := make([]action, 0, len(body))
	for _, st := range body {
		switch s := st.(type) {
		case *loopir.Loop:
			a, err := g.compileLoop(s)
			if err != nil {
				return nil, err
			}
			actions = append(actions, a)
		case *loopir.Access:
			a, err := g.compileAccess(s)
			if err != nil {
				return nil, err
			}
			actions = append(actions, a)
		case *loopir.Call:
			// Opaque call: contributes no references. (Its cost shows up
			// only through the time-gap model, as in the paper.)
		case *loopir.Prefetch:
			a, err := g.compilePrefetch(s)
			if err != nil {
				return nil, err
			}
			actions = append(actions, a)
		default:
			return nil, fmt.Errorf("tracegen: unknown statement %T", st)
		}
	}
	return func(g *generator) error {
		for _, a := range actions {
			if err := a(g); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (g *generator) compileLoop(l *loopir.Loop) (action, error) {
	lo := g.compileSub(l.Lower)
	hi := g.compileSub(l.Upper)
	slot := g.slot(l.Var)
	step := l.Step
	if step == 0 {
		step = 1
	}
	body, err := g.compileBody(l.Body)
	if err != nil {
		return nil, err
	}
	return func(g *generator) error {
		from, err := lo(g)
		if err != nil {
			return err
		}
		to, err := hi(g)
		if err != nil {
			return err
		}
		for i := from; i <= to; i += step {
			g.env[slot] = i
			if err := body(g); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// compilePrefetch compiles a §4.4 software-prefetch instruction. Unlike a
// demand access, an out-of-range address drops the prefetch silently
// (non-faulting semantics) instead of aborting generation.
func (g *generator) compilePrefetch(pf *loopir.Prefetch) (action, error) {
	arr := g.prog.Arrays[pf.Array]
	strides := arr.Strides()
	dims := arr.Dims
	subs := make([]valueFn, len(pf.Index))
	for i, s := range pf.Index {
		subs[i] = g.compileSub(s)
	}
	base := arr.Base
	elem := arr.ElemSize
	return func(g *generator) error {
		idx := 0
		for d, fn := range subs {
			v, err := fn(g)
			if err != nil {
				return err
			}
			if v < 0 || v >= dims[d] {
				return nil // non-faulting: drop the prefetch
			}
			idx += v * strides[d]
		}
		if len(g.out.Records) >= g.max {
			return fmt.Errorf("tracegen: trace exceeds MaxRecords=%d (workload mis-sized?)", g.max)
		}
		gap := uint8(g.gaps.Sample(g.rng))
		if !g.first {
			g.first = true
			gap = 0
		}
		g.out.Append(trace.Record{
			Addr:             base + uint64(idx*elem),
			Gap:              gap,
			Size:             uint8(elem),
			SoftwarePrefetch: true,
		})
		return nil
	}, nil
}

func (g *generator) compileAccess(a *loopir.Access) (action, error) {
	arr := g.prog.Arrays[a.Array]
	strides := arr.Strides()
	dims := arr.Dims
	subs := make([]valueFn, len(a.Index))
	for i, s := range a.Index {
		subs[i] = g.compileSub(s)
	}
	t := g.tags[a.ID]
	base := arr.Base
	elem := arr.ElemSize
	size := arr.Size()
	name := arr.Name
	refID := uint32(a.ID)
	write := a.Write
	var vlHint uint8
	if t.Spatial {
		vlHint = trace.EncodeVirtualHint(t.VirtualBytes)
	}
	return func(g *generator) error {
		idx := 0
		for d, fn := range subs {
			v, err := fn(g)
			if err != nil {
				return err
			}
			if v < 0 || v >= dims[d] {
				return fmt.Errorf("tracegen: subscript %d out of range [0,%d) in dim %d of %s (ref %d)",
					v, dims[d], d, name, refID)
			}
			idx += v * strides[d]
		}
		if idx < 0 || idx >= size {
			return fmt.Errorf("tracegen: linear index %d out of range for %s", idx, name)
		}
		if len(g.out.Records) >= g.max {
			return fmt.Errorf("tracegen: trace exceeds MaxRecords=%d (workload mis-sized?)", g.max)
		}
		gap := uint8(g.gaps.Sample(g.rng))
		if !g.first {
			g.first = true
			gap = 0
		}
		g.out.Append(trace.Record{
			Addr:        base + uint64(idx*elem),
			RefID:       refID,
			Gap:         gap,
			Size:        uint8(elem),
			Write:       write,
			Temporal:    t.Temporal,
			Spatial:     t.Spatial,
			VirtualHint: vlHint,
		})
		return nil
	}, nil
}
