// Reuse oracle: a trace-replay ground truth for the static locality tags.
//
// The locality analysis (§2.3) tags each static reference temporal or
// spatial from subscript structure alone. This file answers "was it
// right?" by observing, for every dynamic reference in the generated
// trace, whether the promised reuse actually happens:
//
//   - temporal reuse observed: the same word is accessed again within a
//     bounded reuse window (the tag's promise: keep the line, its data
//     will be needed again);
//   - spatial reuse observed: a *different* word of the same cache line
//     is accessed within the window (the tag's promise: fetch the long
//     virtual line, the neighbours will be needed).
//
// The window is measured in distinct lines touched — the same metric as a
// stack distance — so "within the window" means "while the line could
// still plausibly be resident". A tag names a property of the *data*, not
// a direction of time: the store that closes a read-modify-write pair
// exhibits its temporal reuse backwards, the first load of a group
// forwards. The oracle therefore looks both ways, scanning the trace
// twice (forward and reversed) and OR-ing the observations.
package stackdist

import "softcache/internal/trace"

// Reuse holds the per-record observation bits produced by the oracle.
type Reuse struct {
	// Temporal: the same word is re-referenced within the window,
	// in the past or the future.
	Temporal bool
	// Spatial: a different word of the same line is referenced within the
	// window, in the past or the future.
	Spatial bool
}

// lineState tracks enough per-line history to answer "when was this line
// last touched at a word different from the current one" in O(1): the two
// most recent *distinct* words and their touch times.
type lineState struct {
	lastWord  uint64
	lastTime  int
	otherTime int // latest touch at a word != lastWord (0 = never)
}

// reuseScanner performs one directional pass over an address stream.
type reuseScanner struct {
	an    *Analyzer
	lines map[uint64]*lineState
	elem  map[uint64]int // word -> time of latest touch
}

func newReuseScanner(n int) *reuseScanner {
	return &reuseScanner{
		an:    NewAnalyzer(n),
		lines: make(map[uint64]*lineState, n/4),
		elem:  make(map[uint64]int, n/2),
	}
}

// step processes one reference and reports the reuse observed *behind* it
// in this pass's scan direction, measured in distinct lines touched since.
func (s *reuseScanner) step(line, word uint64, window int) (r Reuse) {
	// distinctSince(t) = distinct lines touched strictly between time t
	// and now. Each line touched in that interval has exactly one
	// latest-access marker inside it (markers only move forward in time).
	now := s.an.now + 1 // Access below will advance the clock to this
	if tE, ok := s.elem[word]; ok {
		// Same word touched before: temporal reuse if it is close enough.
		if s.distinctBetween(tE, now) <= window {
			r.Temporal = true
		}
	}
	if ls, ok := s.lines[line]; ok {
		// Find the latest touch of this line at a *different* word.
		tS := 0
		if ls.lastWord != word {
			tS = ls.lastTime
		} else {
			tS = ls.otherTime
		}
		if tS > 0 && s.distinctBetween(tS, now) <= window {
			r.Spatial = true
		}
	}
	// Advance the clock and the per-line Fenwick markers.
	s.an.Access(line)
	s.elem[word] = now
	ls := s.lines[line]
	if ls == nil {
		ls = &lineState{}
		s.lines[line] = ls
	}
	if ls.lastWord == word && ls.lastTime > 0 {
		ls.lastTime = now
	} else {
		if ls.lastTime > 0 {
			ls.otherTime = ls.lastTime
		}
		ls.lastWord = word
		ls.lastTime = now
	}
	return r
}

// distinctBetween counts distinct lines touched strictly between times t
// and now (the reference at time now itself not yet recorded).
func (s *reuseScanner) distinctBetween(t, now int) int {
	return s.an.query(now-1) - s.an.query(t)
}

// ObserveReuse replays the trace through the oracle and returns one Reuse
// per record (software prefetches get the zero value — they are hints, not
// references). lineBytes defaults to 32, the paper's physical line;
// windowLines bounds how far apart (in distinct lines) two touches may be
// to count as reuse, defaulting to 65536 lines (2 MiB of 32-byte lines).
func ObserveReuse(t *trace.Trace, lineBytes, windowLines int) []Reuse {
	if lineBytes <= 0 {
		lineBytes = 32
	}
	if windowLines <= 0 {
		windowLines = 1 << 16
	}
	out := make([]Reuse, len(t.Records))

	// Backward observations: scan forward, each step sees its past.
	fwd := newReuseScanner(t.Len())
	for i, rec := range t.Records {
		if rec.SoftwarePrefetch {
			continue
		}
		out[i] = fwd.step(rec.Addr/uint64(lineBytes), rec.Addr, windowLines)
	}
	// Forward observations: scan the reversed trace, OR into place.
	rev := newReuseScanner(t.Len())
	for i := len(t.Records) - 1; i >= 0; i-- {
		rec := t.Records[i]
		if rec.SoftwarePrefetch {
			continue
		}
		r := rev.step(rec.Addr/uint64(lineBytes), rec.Addr, windowLines)
		out[i].Temporal = out[i].Temporal || r.Temporal
		out[i].Spatial = out[i].Spatial || r.Spatial
	}
	return out
}
