// Package stackdist computes LRU stack distances (Mattson's algorithm) and
// the classic three-C miss classification — compulsory, capacity,
// conflict — that the paper's analysis leans on throughout ("a major share
// of cache misses removed are compulsory and capacity misses corresponding
// to vector accesses", §3.2).
//
// The stack distance of a reference is the number of *distinct* lines
// touched since the previous access to the same line. A fully-associative
// LRU cache of C lines misses exactly the references with distance >= C
// (plus first touches), so one pass yields the miss ratio of every cache
// size at once. The implementation uses a Fenwick tree over access
// timestamps: O(log n) per reference.
package stackdist

import "softcache/internal/trace"

// Analyzer computes stack distances online, one line address at a time.
type Analyzer struct {
	lastUse map[uint64]int // line -> timestamp of previous access
	tree    []int          // Fenwick tree over timestamps: 1 = line's latest access
	now     int
}

// NewAnalyzer returns an analyzer sized for about n accesses (the
// structure grows if exceeded).
func NewAnalyzer(n int) *Analyzer {
	if n < 16 {
		n = 16
	}
	return &Analyzer{
		lastUse: make(map[uint64]int, n/4),
		tree:    make([]int, n+1),
	}
}

// Access records a reference to the given line address and returns its
// stack distance; first is true for a first touch (infinite distance).
func (a *Analyzer) Access(line uint64) (distance int, first bool) {
	a.now++
	if a.now >= len(a.tree) {
		// A Fenwick tree cannot grow by zero-extension (the new upper
		// nodes must cover sums of earlier ranges): rebuild from the
		// current markers — one per resident line, in lastUse.
		a.tree = make([]int, 2*len(a.tree))
		for _, ts := range a.lastUse {
			a.update(ts, 1)
		}
	}
	last, seen := a.lastUse[line]
	if seen {
		// Distinct lines touched in (last, now): each has exactly one
		// "latest access" marker in that window.
		distance = a.query(a.now-1) - a.query(last)
		a.update(last, -1)
	}
	a.update(a.now, 1)
	a.lastUse[line] = a.now
	return distance, !seen
}

// DistinctLines returns the number of distinct lines seen so far.
func (a *Analyzer) DistinctLines() int { return len(a.lastUse) }

func (a *Analyzer) update(i, delta int) {
	for ; i < len(a.tree); i += i & (-i) {
		a.tree[i] += delta
	}
}

func (a *Analyzer) query(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += a.tree[i]
	}
	return s
}

// Profile is the result of a full-trace stack-distance pass at line
// granularity.
type Profile struct {
	// Histogram[d] counts references with stack distance exactly d, for
	// d < len(Histogram)-1; the last bucket aggregates larger distances.
	Histogram []uint64
	// Compulsory counts first touches.
	Compulsory uint64
	// References is the number of accesses profiled.
	References uint64
}

// Analyze runs Mattson's algorithm over the trace at the given line size.
// maxTracked bounds the histogram's resolution (distances beyond it land
// in the overflow bucket); it should exceed the largest cache size of
// interest in lines.
func Analyze(t *trace.Trace, lineSize, maxTracked int) Profile {
	if lineSize <= 0 {
		lineSize = 32
	}
	if maxTracked <= 0 {
		maxTracked = 1 << 14
	}
	a := NewAnalyzer(t.Len())
	p := Profile{Histogram: make([]uint64, maxTracked+1)}
	for _, r := range t.Records {
		if r.SoftwarePrefetch {
			continue
		}
		d, first := a.Access(r.Addr / uint64(lineSize))
		p.References++
		if first {
			p.Compulsory++
			continue
		}
		if d > maxTracked {
			d = maxTracked
		}
		p.Histogram[d]++
	}
	return p
}

// FullyAssociativeMisses returns how many references miss in a
// fully-associative LRU cache of the given capacity in lines: first
// touches plus references whose distance is >= capacity.
func (p Profile) FullyAssociativeMisses(capacityLines int) uint64 {
	misses := p.Compulsory
	if capacityLines < 0 {
		capacityLines = 0
	}
	for d := capacityLines; d < len(p.Histogram); d++ {
		misses += p.Histogram[d]
	}
	return misses
}

// MissRatio returns the fully-associative LRU miss ratio at the capacity.
func (p Profile) MissRatio(capacityLines int) float64 {
	if p.References == 0 {
		return 0
	}
	return float64(p.FullyAssociativeMisses(capacityLines)) / float64(p.References)
}

// Classification is the three-C decomposition of an observed miss count.
type Classification struct {
	Compulsory uint64
	Capacity   uint64
	Conflict   uint64
}

// Total returns the sum of the three classes.
func (c Classification) Total() uint64 { return c.Compulsory + c.Capacity + c.Conflict }

// Classify splits observedMisses (measured on a real cache of
// capacityLines lines) into the three Cs using the profile: compulsory =
// first touches, capacity = further fully-associative LRU misses at the
// same capacity, conflict = the remainder. Anomalies (an observed count
// below the fully-associative one, possible for adversarial patterns and
// non-LRU effects) clamp conflict at zero.
func (p Profile) Classify(capacityLines int, observedMisses uint64) Classification {
	c := Classification{Compulsory: p.Compulsory}
	c.Capacity = p.FullyAssociativeMisses(capacityLines) - p.Compulsory
	if fa := c.Compulsory + c.Capacity; observedMisses > fa {
		c.Conflict = observedMisses - fa
	}
	return c
}
