package stackdist

import (
	"testing"
	"testing/quick"

	"softcache/internal/timing"
	"softcache/internal/trace"
)

func TestAnalyzerBasic(t *testing.T) {
	a := NewAnalyzer(16)
	// Stream: A B C A  -> A's second access has distance 2 (B, C).
	if _, first := a.Access(1); !first {
		t.Fatal("A is a first touch")
	}
	a.Access(2)
	a.Access(3)
	d, first := a.Access(1)
	if first || d != 2 {
		t.Fatalf("distance = %d first=%v, want 2 false", d, first)
	}
	// Immediate re-access: distance 0.
	if d, _ := a.Access(1); d != 0 {
		t.Fatalf("re-access distance = %d, want 0", d)
	}
	if a.DistinctLines() != 3 {
		t.Fatalf("distinct = %d", a.DistinctLines())
	}
}

func TestAnalyzerGrows(t *testing.T) {
	a := NewAnalyzer(4)
	for i := 0; i < 1000; i++ {
		a.Access(uint64(i))
	}
	d, first := a.Access(0)
	if first || d != 999 {
		t.Fatalf("distance = %d first=%v, want 999 false", d, first)
	}
}

// TestAnalyzerMatchesNaive cross-checks the Fenwick implementation against
// a brute-force LRU stack on random streams.
func TestAnalyzerMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := timing.NewRNG(seed)
		a := NewAnalyzer(64)
		var stack []uint64 // most recent last
		for i := 0; i < 500; i++ {
			line := uint64(rng.Intn(40))
			// Naive distance: position from the top of the stack.
			naive, found := -1, false
			for j := len(stack) - 1; j >= 0; j-- {
				if stack[j] == line {
					naive = len(stack) - 1 - j
					found = true
					stack = append(stack[:j], stack[j+1:]...)
					break
				}
			}
			stack = append(stack, line)
			d, first := a.Access(line)
			if first == found {
				return false
			}
			if found && d != naive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func mkTrace(lines ...uint64) *trace.Trace {
	tr := &trace.Trace{Name: "t"}
	for _, l := range lines {
		tr.Append(trace.Record{Addr: l * 32, Size: 8})
	}
	return tr
}

func TestAnalyzeProfile(t *testing.T) {
	// A B A B C C: compulsory 3; distances: A=1, B=1, C=0.
	p := Analyze(mkTrace(1, 2, 1, 2, 3, 3), 32, 16)
	if p.Compulsory != 3 || p.References != 6 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Histogram[1] != 2 || p.Histogram[0] != 1 {
		t.Fatalf("histogram = %v", p.Histogram[:4])
	}
	// Capacity 1: misses = compulsory + distances >= 1 = 3 + 2.
	if got := p.FullyAssociativeMisses(1); got != 5 {
		t.Fatalf("FA misses(1) = %d, want 5", got)
	}
	// Capacity 2: everything with distance < 2 hits: misses = 3.
	if got := p.FullyAssociativeMisses(2); got != 3 {
		t.Fatalf("FA misses(2) = %d, want 3", got)
	}
	if r := p.MissRatio(2); r != 0.5 {
		t.Fatalf("miss ratio = %v", r)
	}
}

func TestAnalyzeSkipsPrefetches(t *testing.T) {
	tr := mkTrace(1, 2)
	tr.Append(trace.Record{Addr: 96, Size: 8, SoftwarePrefetch: true})
	p := Analyze(tr, 32, 16)
	if p.References != 2 {
		t.Fatalf("prefetch records must not be profiled: %+v", p)
	}
}

func TestClassify(t *testing.T) {
	// Ping-pong between two lines that a 2-line FA cache holds easily:
	// the FA misses are the 2 first touches; a direct-mapped cache where
	// they conflict observes 10 misses -> 8 conflict misses.
	lines := []uint64{0, 32, 0, 32, 0, 32, 0, 32, 0, 32}
	p := Analyze(mkTrace(lines...), 32, 16)
	c := p.Classify(2, 10)
	if c.Compulsory != 2 || c.Capacity != 0 || c.Conflict != 8 {
		t.Fatalf("classification = %+v", c)
	}
	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
	// Clamping: observed below fully-associative.
	c2 := p.Classify(1, 1)
	if c2.Conflict != 0 {
		t.Fatalf("conflict must clamp at 0: %+v", c2)
	}
}

func TestOverflowBucket(t *testing.T) {
	// 100 distinct lines then a re-access: distance 99 lands in the
	// overflow bucket when maxTracked is 10.
	var lines []uint64
	for i := uint64(0); i < 100; i++ {
		lines = append(lines, i)
	}
	lines = append(lines, 0)
	p := Analyze(mkTrace(lines...), 32, 10)
	if p.Histogram[10] != 1 {
		t.Fatalf("overflow bucket = %d", p.Histogram[10])
	}
	// The overflow reference must still count as a miss for any capacity
	// up to maxTracked.
	if got := p.FullyAssociativeMisses(10); got != 101 {
		t.Fatalf("FA misses = %d, want 101", got)
	}
}
