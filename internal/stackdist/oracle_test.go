package stackdist

import (
	"testing"

	"softcache/internal/trace"
)

func mkReuseTrace(addrs ...uint64) *trace.Trace {
	t := &trace.Trace{Name: "oracle"}
	for _, a := range addrs {
		t.Append(trace.Record{Addr: a, Size: 8})
	}
	return t
}

// TestObserveReuseSymmetric: the oracle sees reuse in both directions —
// the first touch of a reused word is credited (forward observation) just
// like the second (backward observation).
func TestObserveReuseSymmetric(t *testing.T) {
	// Word 0 and word 8 share the 32-byte line 0; word 0 recurs.
	r := ObserveReuse(mkReuseTrace(0, 8, 0), 32, 0)
	want := []Reuse{
		{Temporal: true, Spatial: true},  // word 0: reused at [2], neighbour 8 at [1]
		{Temporal: false, Spatial: true}, // word 8: never reused, neighbours both ways
		{Temporal: true, Spatial: true},  // word 0 again
	}
	for i, got := range r {
		if got != want[i] {
			t.Errorf("record %d: observed %+v, want %+v", i, got, want[i])
		}
	}
}

// TestObserveReuseDistinctWords: same-word repetition alone is temporal
// only — spatial requires a *different* word of the line.
func TestObserveReuseDistinctWords(t *testing.T) {
	r := ObserveReuse(mkReuseTrace(64, 64, 64), 32, 0)
	for i, got := range r {
		if !got.Temporal || got.Spatial {
			t.Errorf("record %d: observed %+v, want temporal-only", i, got)
		}
	}
}

// TestObserveReuseWindow: reuse further apart than the window (in distinct
// lines touched) does not count.
func TestObserveReuseWindow(t *testing.T) {
	var addrs []uint64
	addrs = append(addrs, 0)
	for i := 1; i <= 50; i++ {
		addrs = append(addrs, uint64(i*64)) // 50 distinct other lines
	}
	addrs = append(addrs, 0)
	r := ObserveReuse(mkReuseTrace(addrs...), 32, 10)
	if r[0].Temporal || r[len(r)-1].Temporal {
		t.Errorf("reuse across 50 lines observed despite window 10: first=%+v last=%+v",
			r[0], r[len(r)-1])
	}
	wide := ObserveReuse(mkReuseTrace(addrs...), 32, 100)
	if !wide[0].Temporal || !wide[len(wide)-1].Temporal {
		t.Errorf("reuse not observed with window 100: first=%+v last=%+v",
			wide[0], wide[len(wide)-1])
	}
}

// TestObserveReuseSkipsPrefetches: software prefetches are hints, not
// references — they neither observe nor provide reuse.
func TestObserveReuseSkipsPrefetches(t *testing.T) {
	tr := &trace.Trace{Name: "pf"}
	tr.Append(trace.Record{Addr: 0, Size: 8, SoftwarePrefetch: true})
	tr.Append(trace.Record{Addr: 0, Size: 8})
	r := ObserveReuse(tr, 32, 0)
	if r[0] != (Reuse{}) {
		t.Errorf("prefetch record observed reuse: %+v", r[0])
	}
	if r[1].Temporal {
		t.Errorf("prefetch counted as a providing touch: %+v", r[1])
	}
}
