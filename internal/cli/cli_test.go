package cli

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCode(t *testing.T) {
	if got := Code(nil); got != ExitOK {
		t.Fatalf("Code(nil) = %d", got)
	}
	if got := Code(errors.New("boom")); got != ExitFailure {
		t.Fatalf("Code(runtime) = %d", got)
	}
	if got := Code(UsageErrorf("bad flag")); got != ExitUsage {
		t.Fatalf("Code(usage) = %d", got)
	}
	// Usage classification survives wrapping.
	wrapped := fmt.Errorf("context: %w", UsageErrorf("bad flag"))
	if got := Code(wrapped); got != ExitUsage {
		t.Fatalf("Code(wrapped usage) = %d", got)
	}
}

func TestUsageNilPassthrough(t *testing.T) {
	if Usage(nil) != nil {
		t.Fatal("Usage(nil) != nil")
	}
	if !IsUsage(Usage(errors.New("x"))) {
		t.Fatal("Usage(err) not classified as usage")
	}
}

func TestErrorlnPrefix(t *testing.T) {
	var b strings.Builder
	Errorln(&b, "softcache-sim", errors.New("no such trace"))
	if got := b.String(); got != "softcache-sim: no such trace\n" {
		t.Fatalf("got %q", got)
	}
	b.Reset()
	Errorln(&b, "softcache-sim", errors.New("softcache-sim: already prefixed"))
	if got := b.String(); got != "softcache-sim: already prefixed\n" {
		t.Fatalf("double prefix: %q", got)
	}
}

func TestExit(t *testing.T) {
	var b strings.Builder
	if got := Exit(&b, "tool", nil); got != ExitOK || b.Len() != 0 {
		t.Fatalf("Exit(nil) = %d, wrote %q", got, b.String())
	}
	if got := Exit(&b, "tool", UsageErrorf("nope")); got != ExitUsage {
		t.Fatalf("Exit(usage) = %d", got)
	}
	if !strings.Contains(b.String(), "tool: nope") {
		t.Fatalf("stderr = %q", b.String())
	}
}
