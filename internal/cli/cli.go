// Package cli centralises the conventions shared by every softcache
// command: exit 0 on success, 1 on runtime failure, 2 on usage errors,
// and every diagnostic on stderr prefixed with the tool's name.
package cli

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// Exit codes common to all softcache commands.
const (
	ExitOK      = 0 // success
	ExitFailure = 1 // runtime failure: simulation error, I/O, failing checks
	ExitUsage   = 2 // bad flags, bad arguments, unknown names
	// ExitOperational shares the numeric value of ExitUsage on purpose:
	// for the linter-style commands (softcache-vet, softcache-analyze)
	// exit 1 is reserved for findings, so anything that prevented the
	// check from running at all — unreadable source, a failed load —
	// must land on 2, the same "the run itself is broken" band as a
	// usage mistake. Scripts can then trust "1 means the code is dirty".
	ExitOperational = 2
)

// usageError marks an error as the caller's fault (exit 2) rather than a
// runtime failure (exit 1).
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// UsageErrorf builds an error that Code maps to ExitUsage.
func UsageErrorf(format string, args ...any) error {
	return &usageError{fmt.Errorf(format, args...)}
}

// Usage wraps err so Code maps it to ExitUsage. Wrapping nil returns nil.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &usageError{err}
}

// IsUsage reports whether err is (or wraps) a usage error.
func IsUsage(err error) bool {
	var ue *usageError
	return errors.As(err, &ue)
}

// operationalError marks an error as an environment or infrastructure
// failure — the check could not run, as opposed to the check failing.
// Linter-style commands map it to ExitOperational so findings keep
// exit 1 to themselves.
type operationalError struct{ err error }

func (e *operationalError) Error() string { return e.err.Error() }
func (e *operationalError) Unwrap() error { return e.err }

// Operational wraps err so Code maps it to ExitOperational. Wrapping
// nil returns nil.
func Operational(err error) error {
	if err == nil {
		return nil
	}
	return &operationalError{err}
}

// OperationalErrorf builds an error that Code maps to ExitOperational.
func OperationalErrorf(format string, args ...any) error {
	return &operationalError{fmt.Errorf(format, args...)}
}

// IsOperational reports whether err is (or wraps) an operational error.
func IsOperational(err error) bool {
	var oe *operationalError
	return errors.As(err, &oe)
}

// Code maps an error to the conventional exit code.
func Code(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case IsUsage(err):
		return ExitUsage
	case IsOperational(err):
		return ExitOperational
	default:
		return ExitFailure
	}
}

// Errorln prints err to w prefixed "tool: " unless the message already
// starts with that prefix (errors wrapped by the tool's own packages
// often do).
func Errorln(w io.Writer, tool string, err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, tool+":") {
		msg = tool + ": " + msg
	}
	fmt.Fprintln(w, msg)
}

// Exit prints err (if any) with Errorln and returns its exit code — the
// idiom for the tail of every command's run function:
//
//	return cli.Exit(stderr, "softcache-sim", runSim(...))
func Exit(w io.Writer, tool string, err error) int {
	if err != nil {
		Errorln(w, tool, err)
	}
	return Code(err)
}
