// Package cli centralises the conventions shared by every softcache
// command: exit 0 on success, 1 on runtime failure, 2 on usage errors,
// and every diagnostic on stderr prefixed with the tool's name.
package cli

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// Exit codes common to all softcache commands.
const (
	ExitOK      = 0 // success
	ExitFailure = 1 // runtime failure: simulation error, I/O, failing checks
	ExitUsage   = 2 // bad flags, bad arguments, unknown names
)

// usageError marks an error as the caller's fault (exit 2) rather than a
// runtime failure (exit 1).
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// UsageErrorf builds an error that Code maps to ExitUsage.
func UsageErrorf(format string, args ...any) error {
	return &usageError{fmt.Errorf(format, args...)}
}

// Usage wraps err so Code maps it to ExitUsage. Wrapping nil returns nil.
func Usage(err error) error {
	if err == nil {
		return nil
	}
	return &usageError{err}
}

// IsUsage reports whether err is (or wraps) a usage error.
func IsUsage(err error) bool {
	var ue *usageError
	return errors.As(err, &ue)
}

// Code maps an error to the conventional exit code.
func Code(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case IsUsage(err):
		return ExitUsage
	default:
		return ExitFailure
	}
}

// Errorln prints err to w prefixed "tool: " unless the message already
// starts with that prefix (errors wrapped by the tool's own packages
// often do).
func Errorln(w io.Writer, tool string, err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, tool+":") {
		msg = tool + ": " + msg
	}
	fmt.Fprintln(w, msg)
}

// Exit prints err (if any) with Errorln and returns its exit code — the
// idiom for the tail of every command's run function:
//
//	return cli.Exit(stderr, "softcache-sim", runSim(...))
func Exit(w io.Writer, tool string, err error) int {
	if err != nil {
		Errorln(w, tool, err)
	}
	return Code(err)
}
