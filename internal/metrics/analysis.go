// Package metrics characterises traces the way the paper's figures 1 and 4
// do (reuse distances, vector lengths, tag fractions, issue-time
// distribution) and provides the table/chart rendering used by the
// benchmark harness.
package metrics

import (
	"softcache/internal/trace"
)

// ReuseBuckets are the fig. 1a x-axis categories: no reuse, 1–10²,
// 10²–10³, 10³–10⁴ and >10⁴ references.
var ReuseBuckets = []string{"no reuse", "1-1e2", "1e2-1e3", "1e3-1e4", ">1e4"}

// ReuseDistances computes the distribution of reuse distances, in number of
// intervening references, at the given granularity in bytes (the paper uses
// the data element, i.e. addresses; 8 matches double-precision elements).
// Each reference is classified by the distance *to its next use*: the final
// access to an address counts as "no reuse", mirroring fig. 1a where 0
// corresponds to data referenced only once.
func ReuseDistances(t *trace.Trace, granularity int) [5]float64 {
	if granularity <= 0 {
		granularity = 8
	}
	last := make(map[uint64]int, 1<<16) // addr -> index of previous access
	var counts [5]int
	n := len(t.Records)
	for i, r := range t.Records {
		key := r.Addr / uint64(granularity)
		if j, ok := last[key]; ok {
			counts[bucketReuse(i-j)]++
		}
		last[key] = i
	}
	// Addresses never accessed again: one terminal "no reuse" entry each.
	counts[0] += len(last)
	var out [5]float64
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

func bucketReuse(d int) int {
	switch {
	case d <= 100:
		return 1
	case d <= 1000:
		return 2
	case d <= 10000:
		return 3
	default:
		return 4
	}
}

// VectorBuckets are the fig. 1b x-axis categories in bytes.
var VectorBuckets = []string{"<=32B", "33-64B", "65-128B", "129-256B", "257-512B", ">512B"}

// VectorParams mirror the paper's footnote 1: a vector sequence terminates
// when the instruction has been idle for more than MaxGap references or the
// stride exceeds MaxStride bytes.
type VectorParams struct {
	MaxGap    int // default 500 references
	MaxStride int // default 32 bytes
}

// VectorLengths computes the fig. 1b distribution: for every load/store
// instruction (RefID), accesses are grouped into vector sequences and each
// reference is attributed the byte length of the sequence it belongs to.
func VectorLengths(t *trace.Trace, p VectorParams) [6]float64 {
	if p.MaxGap == 0 {
		p.MaxGap = 500
	}
	if p.MaxStride == 0 {
		p.MaxStride = 32
	}
	type state struct {
		lastAddr  uint64
		lastIndex int
		start     uint64
		count     int // references in the current sequence
		active    bool
	}
	states := make(map[uint32]*state)
	var counts [6]int
	n := 0

	flush := func(s *state) {
		if !s.active || s.count == 0 {
			return
		}
		length := int(s.lastAddr-s.start) + 8 // span in bytes
		if s.lastAddr < s.start {
			length = int(s.start-s.lastAddr) + 8
		}
		counts[bucketVector(length)] += s.count
		n += s.count
		s.active = false
		s.count = 0
	}

	for i, r := range t.Records {
		s := states[r.RefID]
		if s == nil {
			s = &state{}
			states[r.RefID] = s
		}
		if s.active {
			stride := int64(r.Addr) - int64(s.lastAddr)
			if stride < 0 {
				stride = -stride
			}
			if i-s.lastIndex > p.MaxGap || stride > int64(p.MaxStride) {
				flush(s)
			}
		}
		if !s.active {
			s.active = true
			s.start = r.Addr
			s.count = 0
		}
		s.lastAddr = r.Addr
		s.lastIndex = i
		s.count++
	}
	for _, s := range states {
		flush(s)
	}

	var out [6]float64
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

func bucketVector(bytes int) int {
	switch {
	case bytes <= 32:
		return 0
	case bytes <= 64:
		return 1
	case bytes <= 128:
		return 2
	case bytes <= 256:
		return 3
	case bytes <= 512:
		return 4
	default:
		return 5
	}
}

// TagClasses are the fig. 4a categories in plot order.
var TagClasses = []string{"none", "spatial only", "temporal only", "temporal+spatial"}

// TagFractions returns the fig. 4a fractions in TagClasses order.
func TagFractions(t *trace.Trace) [4]float64 {
	c := t.CountTags()
	total := float64(c.Total())
	if total == 0 {
		return [4]float64{}
	}
	return [4]float64{
		float64(c.None) / total,
		float64(c.SpatialOnly) / total,
		float64(c.TemporalOnly) / total,
		float64(c.Both) / total,
	}
}

// GapBuckets are the fig. 4b categories (cycles between consecutive
// load/store instructions).
var GapBuckets = []string{"1", "2", "3", "4", "5", "6-10", "11-15", "16-20", ">20"}

// GapDistribution returns the fig. 4b distribution measured on a trace.
func GapDistribution(t *trace.Trace) [9]float64 {
	var counts [9]int
	n := 0
	for i, r := range t.Records {
		if i == 0 {
			continue
		}
		counts[bucketGap(int(r.Gap))]++
		n++
	}
	var out [9]float64
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

func bucketGap(g int) int {
	switch {
	case g <= 5:
		if g < 1 {
			g = 1
		}
		return g - 1
	case g <= 10:
		return 5
	case g <= 15:
		return 6
	case g <= 20:
		return 7
	default:
		return 8
	}
}
