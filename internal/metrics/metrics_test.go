package metrics

import (
	"strings"
	"testing"

	"softcache/internal/trace"
)

func mkTrace(addrs []uint64) *trace.Trace {
	t := &trace.Trace{Name: "m"}
	for _, a := range addrs {
		t.Append(trace.Record{Addr: a, Size: 8, RefID: 1, Gap: 1})
	}
	return t
}

func TestReuseDistancesBasic(t *testing.T) {
	// Address 0 reused at distances 1 and 2; addresses 8,16 never reused.
	tr := mkTrace([]uint64{0, 0, 8, 0, 16})
	d := ReuseDistances(tr, 8)
	// Reuses: two in bucket "1-1e2". Terminal no-reuse entries: 3 distinct
	// addresses. Total refs 5.
	if d[1] != 2.0/5 {
		t.Fatalf("short-reuse share = %v", d[1])
	}
	if d[0] != 3.0/5 {
		t.Fatalf("no-reuse share = %v", d[0])
	}
}

func TestReuseDistancesGranularity(t *testing.T) {
	// 0 and 8 share a 32-byte line: at line granularity the second access
	// is a reuse.
	tr := mkTrace([]uint64{0, 8})
	if d := ReuseDistances(tr, 32); d[1] == 0 {
		t.Fatal("line-granularity reuse not detected")
	}
	if d := ReuseDistances(tr, 8); d[1] != 0 {
		t.Fatal("element-granularity must not see a reuse")
	}
}

func TestReuseDistancesBuckets(t *testing.T) {
	// Build a reuse at distance ~2000 (bucket 1e3-1e4).
	var addrs []uint64
	addrs = append(addrs, 0)
	for i := 0; i < 2000; i++ {
		addrs = append(addrs, uint64(1000000+8*i))
	}
	addrs = append(addrs, 0)
	d := ReuseDistances(mkTrace(addrs), 8)
	if d[3] == 0 {
		t.Fatalf("expected mass in the 1e3-1e4 bucket: %v", d)
	}
}

func TestReuseDistancesEmpty(t *testing.T) {
	if d := ReuseDistances(&trace.Trace{}, 8); d != [5]float64{} {
		t.Fatalf("empty trace: %v", d)
	}
}

func TestVectorLengthsStreams(t *testing.T) {
	// One instruction streaming 64 consecutive doubles: one 512-byte
	// vector (bucket 4: 257-512B).
	var tr trace.Trace
	for i := 0; i < 64; i++ {
		tr.Append(trace.Record{Addr: uint64(8 * i), Size: 8, RefID: 1})
	}
	d := VectorLengths(&tr, VectorParams{})
	if d[4] != 1 {
		t.Fatalf("distribution = %v, want all mass in 257-512B", d)
	}
}

func TestVectorLengthsStrideBreak(t *testing.T) {
	// A jump larger than MaxStride starts a new vector.
	var tr trace.Trace
	for i := 0; i < 4; i++ {
		tr.Append(trace.Record{Addr: uint64(8 * i), Size: 8, RefID: 1})
	}
	tr.Append(trace.Record{Addr: 1 << 20, Size: 8, RefID: 1})
	d := VectorLengths(&tr, VectorParams{})
	// First vector: 4 refs spanning 32 bytes (bucket 0); second: 1 ref.
	if d[0] != 1 {
		t.Fatalf("distribution = %v", d)
	}
}

func TestVectorLengthsGapBreak(t *testing.T) {
	// The same instruction idle for > MaxGap references breaks the vector.
	var tr trace.Trace
	tr.Append(trace.Record{Addr: 0, Size: 8, RefID: 1})
	tr.Append(trace.Record{Addr: 8, Size: 8, RefID: 1})
	for i := 0; i < 600; i++ { // other instruction
		tr.Append(trace.Record{Addr: uint64(1 << 20), Size: 8, RefID: 2})
	}
	tr.Append(trace.Record{Addr: 16, Size: 8, RefID: 1}) // would continue, but too late
	d := VectorLengths(&tr, VectorParams{})
	if d[0] < 0.99 { // everything collapses to <=32B vectors
		t.Fatalf("distribution = %v", d)
	}
}

func TestVectorLengthsMultipleInstructions(t *testing.T) {
	// Two interleaved streams must be tracked independently.
	var tr trace.Trace
	for i := 0; i < 16; i++ {
		tr.Append(trace.Record{Addr: uint64(8 * i), Size: 8, RefID: 1})
		tr.Append(trace.Record{Addr: uint64(1<<20 + 8*i), Size: 8, RefID: 2})
	}
	d := VectorLengths(&tr, VectorParams{})
	if d[2] != 1 { // both are 128-byte vectors
		t.Fatalf("distribution = %v", d)
	}
}

func TestTagFractions(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.Record{})
	tr.Append(trace.Record{Spatial: true})
	tr.Append(trace.Record{Temporal: true})
	tr.Append(trace.Record{Temporal: true, Spatial: true})
	f := TagFractions(&tr)
	for i, want := range []float64{0.25, 0.25, 0.25, 0.25} {
		if f[i] != want {
			t.Fatalf("fractions = %v", f)
		}
	}
}

func TestGapDistribution(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.Record{Gap: 0}) // first record: skipped
	for _, g := range []uint8{1, 2, 2, 5, 8, 12, 17, 25} {
		tr.Append(trace.Record{Gap: g})
	}
	d := GapDistribution(&tr)
	if d[1] != 2.0/8 { // two 2-cycle gaps
		t.Fatalf("distribution = %v", d)
	}
	if d[8] != 1.0/8 { // one >20
		t.Fatalf("distribution = %v", d)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("Title", "bench", "a", "b")
	tbl.AddRow("x", 1.5, 2.25)
	tbl.AddRow("longer-name", 0.125, 10)
	var b strings.Builder
	tbl.Fprint(&b, "%.2f")
	out := b.String()
	for _, want := range []string{"Title", "bench", "longer-name", "1.50", "10.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tbl.Rows() != 2 || tbl.Value(0, 1) != 2.25 || tbl.RowLabelAt(1) != "longer-name" {
		t.Fatal("accessors broken")
	}
	if tbl.ColumnIndex("b") != 1 || tbl.ColumnIndex("zz") != -1 {
		t.Fatal("ColumnIndex broken")
	}
	if s := tbl.String(); !strings.Contains(s, "Title") {
		t.Fatal("String broken")
	}
}

func TestTableArityPanic(t *testing.T) {
	tbl := NewTable("t", "r", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity must panic")
		}
	}()
	tbl.AddRow("x", 1)
}

func TestTableBars(t *testing.T) {
	tbl := NewTable("t", "r", "a")
	tbl.AddRow("x", 2)
	tbl.AddRow("y", 4)
	var b strings.Builder
	tbl.FprintBars(&b, 10)
	out := b.String()
	if !strings.Contains(out, "##########") {
		t.Fatalf("max bar should span the full width:\n%s", out)
	}
}
