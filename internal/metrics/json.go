package metrics

import (
	"encoding/json"
	"fmt"
)

// tableJSON is the wire form of a Table: the unexported rows become an
// explicit list so a table survives a JSON round-trip (the experiment
// harness journals whole reports and re-renders them on resume).
type tableJSON struct {
	Title    string         `json:"title"`
	RowLabel string         `json:"row_label"`
	Columns  []string       `json:"columns"`
	Rows     []tableRowJSON `json:"rows"`
}

type tableRowJSON struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Title: t.Title, RowLabel: t.RowLabel, Columns: t.Columns}
	for _, r := range t.rows {
		out.Rows = append(out.Rows, tableRowJSON{Label: r.label, Values: r.values})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, validating that every row has
// one value per column so a hand-edited or truncated journal cannot smuggle
// in a structurally broken table.
func (t *Table) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	t.Title = in.Title
	t.RowLabel = in.RowLabel
	t.Columns = in.Columns
	t.rows = nil
	for _, r := range in.Rows {
		if len(r.Values) != len(in.Columns) {
			return fmt.Errorf("metrics: row %q has %d values for %d columns", r.Label, len(r.Values), len(in.Columns))
		}
		t.rows = append(t.rows, tableRow{label: r.Label, values: r.Values})
	}
	return nil
}
