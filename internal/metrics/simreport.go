package metrics

import (
	"fmt"
	"io"

	"softcache/internal/core"
	"softcache/internal/trace"
)

// SimulationReport renders the full per-run statistics block of one
// simulation: the format softcache-sim prints and the softcache-served
// /v1/simulate?format=text endpoint returns. Both front doors call this
// one function, so their reports are byte-identical for identical runs —
// the service E2E tests pin that property.
func SimulationReport(w io.Writer, tags trace.TagCounts, res core.Result) {
	s := res.Stats
	fmt.Fprintf(w, "trace          %s (%d references)\n", res.Trace, s.References)
	fmt.Fprintf(w, "config         %s\n", res.Config)
	fmt.Fprintf(w, "AMAT           %.4f cycles\n", s.AMAT())
	fmt.Fprintf(w, "miss ratio     %.4f\n", s.MissRatio())
	fmt.Fprintf(w, "traffic        %.4f words/reference\n", s.WordsPerReference())
	fmt.Fprintf(w, "hits           main=%d (%.1f%%) bounce-back=%d bypass-buffer=%d\n",
		s.MainHits, 100*s.MainHitFraction(), s.BounceBackHits, s.BypassBufferHits)
	fmt.Fprintf(w, "misses         %d (reads %d, writes %d total refs)\n", s.Misses, s.Reads, s.Writes)
	fmt.Fprintf(w, "virtual fills  %d (lines fetched %d, skipped by coherence %d, invalidations %d)\n",
		s.VirtualFills, s.VirtualLinesFetched, s.VirtualLinesSkipped, s.Invalidations)
	fmt.Fprintf(w, "bounce-back    swaps=%d bounced=%d canceled=%d aborted=%d\n",
		s.Swaps, s.BouncedBack, s.BounceBackCanceled, s.BounceBackAborted)
	fmt.Fprintf(w, "prefetch       issued=%d hits=%d discarded=%d\n",
		s.PrefetchesIssued, s.PrefetchHits, s.PrefetchDiscarded)
	fmt.Fprintf(w, "memory         requests=%d bytes=%d writebacks=%d wb-stall=%d cycles\n",
		s.Mem.Requests, s.Mem.BytesFetched, s.Mem.Writebacks, s.Mem.WritebackStallCycles)
	fmt.Fprintf(w, "lock stalls    %d cycles\n", s.LockStallCycles)
	fmt.Fprintf(w, "tags           none=%d spatial=%d temporal=%d both=%d\n",
		tags.None, tags.SpatialOnly, tags.TemporalOnly, tags.Both)
}
