package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned report table: one row per benchmark (or
// parameter value), one column per configuration (or bucket). It renders to
// plain text for the harness output and EXPERIMENTS.md.
type Table struct {
	Title    string
	RowLabel string
	Columns  []string
	rows     []tableRow
}

type tableRow struct {
	label  string
	values []float64
}

// NewTable creates a table titled title whose first column is labelled
// rowLabel and whose value columns are cols.
func NewTable(title, rowLabel string, cols ...string) *Table {
	return &Table{Title: title, RowLabel: rowLabel, Columns: cols}
}

// AddRow appends a row; the number of values must match the columns.
func (t *Table) AddRow(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: row %q has %d values for %d columns", label, len(values), len(t.Columns)))
	}
	t.rows = append(t.rows, tableRow{label: label, values: values})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the cell (row, col).
func (t *Table) Value(row, col int) float64 { return t.rows[row].values[col] }

// RowLabelAt returns the label of row i.
func (t *Table) RowLabelAt(i int) string { return t.rows[i].label }

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Fprint renders the table with the given value format (e.g. "%.3f").
func (t *Table) Fprint(w io.Writer, format string) {
	if format == "" {
		format = "%.3f"
	}
	labelW := len(t.RowLabel)
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.rows))
	for i, c := range t.Columns {
		colW[i] = len(c)
	}
	for ri, r := range t.rows {
		cells[ri] = make([]string, len(r.values))
		for ci, v := range r.values {
			s := fmt.Sprintf(format, v)
			cells[ri][ci] = s
			if len(s) > colW[ci] {
				colW[ci] = len(s)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title)))
	}
	fmt.Fprintf(w, "%-*s", labelW, t.RowLabel)
	for i, c := range t.Columns {
		fmt.Fprintf(w, "  %*s", colW[i], c)
	}
	fmt.Fprintln(w)
	for ri, r := range t.rows {
		fmt.Fprintf(w, "%-*s", labelW, r.label)
		for ci := range r.values {
			fmt.Fprintf(w, "  %*s", colW[ci], cells[ri][ci])
		}
		fmt.Fprintln(w)
	}
}

// String renders with the default format.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b, "%.3f")
	return b.String()
}

// FprintBars renders an ASCII grouped bar chart of the table, scaled to
// width characters, for quick visual comparison in a terminal. Values must
// be non-negative.
func (t *Table) FprintBars(w io.Writer, width int) {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, r := range t.rows {
		for _, v := range r.values {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	for _, r := range t.rows {
		fmt.Fprintf(w, "%s\n", r.label)
		for ci, v := range r.values {
			n := int(v / max * float64(width))
			fmt.Fprintf(w, "  %-16s |%s %.3f\n", t.Columns[ci], strings.Repeat("#", n), v)
		}
	}
}
