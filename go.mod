module softcache

go 1.22
