// Package softcache_test hosts the repository-level benchmark harness: one
// testing.B target per figure of the paper (BenchmarkFig01a …
// BenchmarkFig12, BenchmarkAblations) plus micro-benchmarks of the
// simulator and trace generator.
//
// The figure benchmarks run at test scale by default so `go test -bench=.`
// stays fast; set SOFTCACHE_BENCH_SCALE=paper to regenerate the figures at
// the paper's workload sizes (cmd/softcache-bench does the same with
// readable output and shape checks).
package softcache_test

import (
	"bytes"
	stdcontext "context"
	"os"
	"sync"
	"testing"

	"softcache/internal/bench"
	"softcache/internal/core"
	"softcache/internal/locality"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

var (
	ctxOnce  sync.Once
	benchCtx *bench.Context
)

func benchScale() workloads.Scale {
	if os.Getenv("SOFTCACHE_BENCH_SCALE") == "paper" {
		return workloads.ScalePaper
	}
	return workloads.ScaleTest
}

func context() *bench.Context {
	ctxOnce.Do(func() { benchCtx = bench.NewContext(benchScale(), 1) })
	return benchCtx
}

// runFigure executes the experiment b.N times (traces are cached in the
// shared context, so iterations measure simulation, not generation).
func runFigure(b *testing.B, id string) {
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

func BenchmarkFig01a(b *testing.B)    { runFigure(b, "1a") }
func BenchmarkFig01b(b *testing.B)    { runFigure(b, "1b") }
func BenchmarkFig03a(b *testing.B)    { runFigure(b, "3a") }
func BenchmarkFig03b(b *testing.B)    { runFigure(b, "3b") }
func BenchmarkThreeC(b *testing.B)    { runFigure(b, "3c") }
func BenchmarkFig04a(b *testing.B)    { runFigure(b, "4a") }
func BenchmarkFig04b(b *testing.B)    { runFigure(b, "4b") }
func BenchmarkFig06a(b *testing.B)    { runFigure(b, "6a") }
func BenchmarkFig06b(b *testing.B)    { runFigure(b, "6b") }
func BenchmarkFig07a(b *testing.B)    { runFigure(b, "7a") }
func BenchmarkFig07b(b *testing.B)    { runFigure(b, "7b") }
func BenchmarkFig08a(b *testing.B)    { runFigure(b, "8a") }
func BenchmarkFig08b(b *testing.B)    { runFigure(b, "8b") }
func BenchmarkFig09a(b *testing.B)    { runFigure(b, "9a") }
func BenchmarkFig09b(b *testing.B)    { runFigure(b, "9b") }
func BenchmarkFig10a(b *testing.B)    { runFigure(b, "10a") }
func BenchmarkFig10b(b *testing.B)    { runFigure(b, "10b") }
func BenchmarkFig11a(b *testing.B)    { runFigure(b, "11a") }
func BenchmarkFig11b(b *testing.B)    { runFigure(b, "11b") }
func BenchmarkFig12(b *testing.B)     { runFigure(b, "12") }
func BenchmarkAblations(b *testing.B) { runFigure(b, "ablations") }
func BenchmarkFig12SW(b *testing.B)   { runFigure(b, "12sw") }
func BenchmarkRelated(b *testing.B)   { runFigure(b, "related") }
func BenchmarkIssueRate(b *testing.B) { runFigure(b, "issue") }
func BenchmarkSummary(b *testing.B)   { runFigure(b, "summary") }

// --- micro-benchmarks ----------------------------------------------------

// benchmarkSimulator measures per-reference simulation cost and reports the
// resulting AMAT as a custom metric, so regressions in either speed or
// model behaviour are visible.
func benchmarkSimulator(b *testing.B, cfg core.Config) {
	tr, err := workloads.Trace("MV", benchScale(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var amat float64
	for i := 0; i < b.N; i++ {
		res, err := core.Simulate(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		amat = res.AMAT()
	}
	b.ReportMetric(amat, "AMAT-cycles")
	b.ReportMetric(float64(tr.Len()), "refs/op")
}

// fusedBenchGroup is the cache-size axis of figure 3 as a fused config
// group: the kind of one-workload many-configuration sweep SimulateMany
// exists for.
func fusedBenchGroup() []core.Config {
	var cfgs []core.Config
	for _, kb := range []int{8, 16, 32, 64, 128, 256} {
		cfg := core.Standard()
		cfg.CacheSize = kb << 10
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

func fusedBenchData(b *testing.B) []byte {
	tr, err := workloads.Trace("MV", benchScale(), 1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkSimulateMany measures the fused kernel: the trace is decoded
// once per iteration and every configuration consumes each decoded batch.
// Compare ns/op against BenchmarkSimulateManyLooped — the gap is the
// decode cost the fusion amortises (tracked in BENCH_kernel.json).
func BenchmarkSimulateMany(b *testing.B) {
	cfgs := fusedBenchGroup()
	data := fusedBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := trace.NewReaderBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.SimulateMany(stdcontext.Background(), cfgs, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateManyLooped is the unfused baseline for
// BenchmarkSimulateMany: one SimulateStream pass per configuration, so the
// trace is decoded len(cfgs) times.
func BenchmarkSimulateManyLooped(b *testing.B) {
	cfgs := fusedBenchGroup()
	data := fusedBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			r, err := trace.NewReaderBytes(data)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.SimulateStream(cfg, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSimulateStandard(b *testing.B) { benchmarkSimulator(b, core.Standard()) }
func BenchmarkSimulateSoft(b *testing.B)     { benchmarkSimulator(b, core.Soft()) }
func BenchmarkSimulateSoftPrefetch(b *testing.B) {
	benchmarkSimulator(b, core.WithPrefetch(core.Soft(), true))
}

func BenchmarkTraceGeneration(b *testing.B) {
	p, err := workloads.BuildProgram("MV", benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracegen.Generate(p, tracegen.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalityAnalysis(b *testing.B) {
	p, err := workloads.BuildProgram("Slalom", benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locality.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}
