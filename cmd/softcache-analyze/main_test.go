package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"softcache/internal/cli"
)

func TestVersionProbe(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != cli.ExitOK {
		t.Fatalf("-V=full exit %d, stderr %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "softcache-analyze version ") {
		t.Fatalf("version line %q", out.String())
	}
}

func TestFlagsProbe(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-flags"}, &out, &errb); code != cli.ExitOK {
		t.Fatalf("-flags exit %d", code)
	}
	var flags []struct{ Name string }
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags is not JSON: %v\n%s", err, out.String())
	}
	names := make(map[string]bool)
	for _, f := range flags {
		names[f.Name] = true
	}
	for _, want := range []string{"poolescape", "lockguard", "ctxpoll", "metrictext", "cliexit"} {
		if !names[want] {
			t.Errorf("-flags missing analyzer %q", want)
		}
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != cli.ExitUsage {
		t.Fatalf("bad flag: exit %d, want %d", code, cli.ExitUsage)
	}
}

func TestOperationalErrorsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./does/not/exist/..."}, &out, &errb)
	if code != cli.ExitOperational {
		t.Fatalf("broken load: exit %d, want %d; stderr %s", code, cli.ExitOperational, errb.String())
	}
	if !strings.Contains(errb.String(), "softcache-analyze:") {
		t.Fatalf("operational error not prefixed: %q", errb.String())
	}
	var cfgOut, cfgErr bytes.Buffer
	if code := run([]string{"missing.cfg"}, &cfgOut, &cfgErr); code != cli.ExitOperational {
		t.Fatalf("missing cfg: exit %d, want %d", code, cli.ExitOperational)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"softcache/internal/cli"}, &out, &errb); code != cli.ExitOK {
		t.Fatalf("clean package: exit %d\nstdout %s\nstderr %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean package produced output: %s", out.String())
	}
}

// TestFindingsExitOne runs the suite standalone over a dirty fixture
// package staged in a throwaway module-relative directory.
func TestFindingsExitOne(t *testing.T) {
	dir := stageDirtyPackage(t)
	var out, errb bytes.Buffer
	code := run([]string{"./" + filepath.ToSlash(dir) + "/..."}, &out, &errb)
	if code != cli.ExitFailure {
		t.Fatalf("dirty package: exit %d, want %d\nstdout %s\nstderr %s", code, cli.ExitFailure, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[cliexit]") {
		t.Fatalf("finding not rendered with analyzer tag: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-json", "./" + filepath.ToSlash(dir) + "/..."}, &out, &errb)
	if code != cli.ExitFailure {
		t.Fatalf("dirty package -json: exit %d, want %d", code, cli.ExitFailure)
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("-json line %q: %v", line, err)
		}
		if d.Analyzer != "cliexit" || d.Line == 0 {
			t.Fatalf("unexpected JSON diagnostic %+v", d)
		}
	}
}

// TestAnalyzerSelection: with -poolescape only, the cliexit finding in
// the dirty package is not reported.
func TestAnalyzerSelection(t *testing.T) {
	dir := stageDirtyPackage(t)
	var out, errb bytes.Buffer
	code := run([]string{"-poolescape", "./" + filepath.ToSlash(dir) + "/..."}, &out, &errb)
	if code != cli.ExitOK {
		t.Fatalf("-poolescape over cliexit-dirty package: exit %d\nstdout %s\nstderr %s", code, out.String(), errb.String())
	}
}

// stageDirtyPackage writes a package with one cliexit violation inside
// the module (so go list can see it) and removes it afterwards.
func stageDirtyPackage(t *testing.T) string {
	t.Helper()
	dir := filepath.Join("testdata", "staged_"+strings.ReplaceAll(t.Name(), "/", "_"))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	src := `package dirty

import "os"

func bail() {
	os.Exit(1)
}
`
	if err := os.WriteFile(filepath.Join(dir, "dirty.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestGoVetVettool drives the real protocol end to end: build the
// binary, hand it to go vet, and check both the clean and the dirty
// path.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "softcache-analyze")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "softcache/internal/cli")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean package: %v\n%s", err, out)
	}

	dir := stageDirtyPackage(t)
	vet = exec.Command("go", "vet", "-vettool="+bin, "./"+filepath.ToSlash(dir)+"/...")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool over dirty package succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "terminates the process from a library package") {
		t.Fatalf("vet output missing the cliexit finding:\n%s", out)
	}
}
