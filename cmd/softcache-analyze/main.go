// Command softcache-analyze runs softcache's own static-analysis suite
// (internal/analyze/passes) over the module's packages. It speaks two
// dialects:
//
// Standalone, the everyday form:
//
//	softcache-analyze [-json] [-tests] [-<analyzer>...] [packages]
//
// loads the named packages (default ./...) through `go list -export`
// and prints findings as "file:line:col: message [analyzer]" lines on
// stdout, or as one JSON object per line under -json. Exit codes follow
// the linter convention shared with softcache-vet: 0 clean, 1 findings,
// 2 the analysis itself could not run.
//
// Unitchecker, for the build system:
//
//	go vet -vettool=$(which softcache-analyze) ./...
//
// cmd/go probes the tool with -V=full and -flags, then invokes it once
// per package with a .cfg work unit; the tool type-checks from the
// export data cmd/go already built and reports findings on stderr.
// This is how CI runs the suite — incremental, cached, and parallel
// across packages for free.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"softcache/internal/analyze"
	"softcache/internal/analyze/passes"
	"softcache/internal/cli"
)

const tool = "softcache-analyze"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The two cmd/go probe forms come before flag parsing: the tool
	// must answer them exactly, with nothing else on stdout.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			analyze.PrintVersion(stdout, tool)
			return cli.ExitOK
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		analyze.PrintFlags(stdout, passes.All())
		return cli.ExitOK
	}

	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding (standalone) or vet aggregate JSON (unitchecker)")
	tests := fs.Bool("tests", false, "also report findings located in _test.go files")
	fs.Int("c", -1, "accepted for go vet compatibility; ignored")
	selected := make(map[string]*bool)
	for _, a := range passes.All() {
		selected[a.Name] = fs.Bool(a.Name, false, "run the "+a.Name+" analyzer ("+a.Doc+")")
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [flags] [packages]\n\nAnalyzers (all run when none is selected):\n", tool)
		for _, a := range passes.All() {
			fmt.Fprintf(stderr, "  -%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	var names []string
	for _, a := range passes.All() {
		if *selected[a.Name] {
			names = append(names, a.Name)
		}
	}
	analyzers, err := passes.Select(names)
	if err != nil {
		return cli.Exit(stderr, tool, cli.Usage(err))
	}
	opts := analyze.Options{Tests: *tests}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], analyzers, opts, *jsonOut, stdout, stderr)
	}
	return runStandalone(rest, analyzers, opts, *jsonOut, stdout, stderr)
}

// runStandalone loads packages itself and prints findings on stdout.
func runStandalone(patterns []string, analyzers []*analyze.Analyzer, opts analyze.Options, jsonOut bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyze.Load(".", patterns)
	if err != nil {
		return cli.Exit(stderr, tool, cli.Operational(err))
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analyze.RunAnalyzers(pkg, analyzers, opts)
		if err != nil {
			return cli.Exit(stderr, tool, cli.Operational(err))
		}
		if len(diags) == 0 {
			continue
		}
		found = true
		if jsonOut {
			if err := analyze.WriteDiagnosticsJSON(stdout, pkg.Fset, diags); err != nil {
				return cli.Exit(stderr, tool, cli.Operational(err))
			}
		} else {
			analyze.WriteDiagnosticsText(stdout, pkg.Fset, diags)
		}
	}
	if found {
		return cli.ExitFailure
	}
	return cli.ExitOK
}

// runUnit handles one go vet work unit. Text findings go to stderr and
// exit 1 (any nonzero fails the vet run); under go vet -json the
// aggregate JSON goes to stdout and the exit is 0 so cmd/go can keep
// collecting.
func runUnit(cfgFile string, analyzers []*analyze.Analyzer, opts analyze.Options, jsonOut bool, stdout, stderr io.Writer) int {
	diags, fset, pkgID, err := analyze.Unitchecker(cfgFile, analyzers, opts)
	if err != nil {
		return cli.Exit(stderr, tool, cli.Operational(err))
	}
	if jsonOut {
		if fset != nil {
			if err := analyze.WriteVetJSON(stdout, fset, pkgID, diags); err != nil {
				return cli.Exit(stderr, tool, cli.Operational(err))
			}
		}
		return cli.ExitOK
	}
	if len(diags) > 0 {
		analyze.WriteDiagnosticsText(stderr, fset, diags)
		return cli.ExitFailure
	}
	return cli.ExitOK
}
