// softcache-sweep explores the design space beyond the paper's figures: it
// sweeps one or two configuration parameters over a workload and prints a
// CSV matrix of the chosen metric.
//
// Usage:
//
//	softcache-sweep -workload MV -x latency=5,10,20,30
//	softcache-sweep -workload SpMV -config soft \
//	    -x cache=4,8,16,32 -y vline=0,64,128,256 -metric miss
//	softcache-sweep -source kernel.loop -x line=16,32,64 -metric traffic
//	softcache-sweep -workload MV -x cache=4,8,16,32 -workers 4
//
// Axes: cache (KiB), line (bytes), vline (bytes; 0 disables), latency
// (cycles), assoc (ways), bb (bounce-back lines), sbuf (stream buffers).
// Metrics: amat, miss, traffic.
//
// The x axis is fused: each matrix row is one unit that simulates all of
// its configurations in a single pass over the trace (core.SimulateManyTrace),
// so the trace is decoded once per row instead of once per cell. Rows run
// on the experiment harness (internal/harness): in parallel under
// -workers, each bounded by -timeout, with panics converted into
// structured failed-run records on stderr and completed rows checkpointed
// to -journal so an interrupted sweep resumes with -resume. A journaled
// row replays only while its config group (the -x axis) is unchanged;
// reshaping the axis re-runs the rows it touches. Journals written by
// per-cell versions of this tool do not resume (the keys changed from
// cell: to row:). The matrix is printed in row-major order regardless of
// worker count.
//
// The process exits 0 on success, 1 when any cell fails, and 2 on usage
// errors (bad axes, unknown metric or config).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"softcache/internal/cli"
	"softcache/internal/core"
	"softcache/internal/harness"
	"softcache/internal/lang"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

const tool = "softcache-sweep"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// axis is one swept parameter.
type axis struct {
	key    string
	values []int
}

// parseAxis parses "key=v1,v2,v3" and validates the key and every value.
func parseAxis(s string) (axis, error) {
	key, list, ok := strings.Cut(s, "=")
	if !ok || key == "" || list == "" {
		return axis{}, cli.UsageErrorf("axis %q must be key=v1,v2,...", s)
	}
	var a axis
	a.key = key
	seen := make(map[int]bool)
	for _, v := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return axis{}, cli.UsageErrorf("axis %q: %v", s, err)
		}
		if err := checkAxisValue(key, n); err != nil {
			return axis{}, err
		}
		if seen[n] {
			return axis{}, cli.UsageErrorf("axis %q: duplicate value %d", s, n)
		}
		seen[n] = true
		a.values = append(a.values, n)
	}
	return a, nil
}

// checkAxisValue rejects values the simulator would misconfigure on:
// structural parameters must be positive, optional features non-negative.
func checkAxisValue(key string, v int) error {
	switch key {
	case "cache", "line", "assoc":
		if v <= 0 {
			return cli.UsageErrorf("axis %s: value %d must be positive", key, v)
		}
	case "latency", "vline", "bb", "sbuf":
		if v < 0 {
			return cli.UsageErrorf("axis %s: value %d must be non-negative", key, v)
		}
	default:
		return cli.UsageErrorf("unknown axis %q (want cache, line, vline, latency, assoc, bb or sbuf)", key)
	}
	return nil
}

// apply sets one swept parameter on the configuration.
func apply(cfg core.Config, key string, v int) (core.Config, error) {
	switch key {
	case "cache":
		cfg.CacheSize = v << 10
	case "line":
		cfg.LineSize = v
	case "vline":
		cfg.VirtualLineSize = v
	case "latency":
		cfg.Memory.LatencyCycles = v
	case "assoc":
		cfg.Assoc = v
	case "bb":
		cfg.BounceBackLines = v
		if v > 0 && cfg.BounceBackCycles == 0 {
			cfg.BounceBackCycles = 3
			cfg.SwapLockCycles = 2
		}
	case "sbuf":
		cfg.StreamBuffers = v
	default:
		return cfg, cli.UsageErrorf("unknown axis %q (want cache, line, vline, latency, assoc, bb or sbuf)", key)
	}
	return cfg, nil
}

// metricOf extracts the requested metric.
func metricOf(name string, r core.Result) (float64, error) {
	switch name {
	case "amat":
		return r.AMAT(), nil
	case "miss":
		return r.MissRatio(), nil
	case "traffic":
		return r.Stats.WordsPerReference(), nil
	default:
		return 0, cli.UsageErrorf("unknown metric %q (want amat, miss or traffic)", name)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload name")
	source := fs.String("source", "", "loop-nest source file")
	configName := fs.String("config", "soft", "base configuration (as in softcache-sim)")
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	seed := fs.Uint64("seed", 1, "trace generation seed")
	xSpec := fs.String("x", "", "swept axis: key=v1,v2,... (columns)")
	ySpec := fs.String("y", "", "optional second axis (rows)")
	metric := fs.String("metric", "amat", "metric: amat, miss or traffic")
	workers := fs.Int("workers", 1, "sweep rows simulated in parallel")
	timeout := fs.Duration("timeout", 0, "per-row timeout (0 = none)")
	journal := fs.String("journal", "", "append completed rows to this JSONL checkpoint file")
	resume := fs.Bool("resume", false, "replay rows already completed in -journal instead of re-running them")
	check := fs.Bool("check", false, "enable runtime invariant checking in every simulation (slower)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *xSpec == "" {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-x is required"))
	}

	xAxis, err := parseAxis(*xSpec)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	yAxis := axis{key: "", values: []int{0}}
	if *ySpec != "" {
		yAxis, err = parseAxis(*ySpec)
		if err != nil {
			return cli.Exit(stderr, tool, err)
		}
		if yAxis.key == xAxis.key {
			return cli.Exit(stderr, tool, cli.UsageErrorf("-x and -y sweep the same axis %q", xAxis.key))
		}
	}
	if _, err := metricOf(*metric, core.Result{}); err != nil {
		return cli.Exit(stderr, tool, err)
	}

	base, err := baseConfig(*configName)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	if *check {
		base = core.WithRuntimeChecks(base, true)
	}
	t, err := loadTrace(*workload, *source, *scaleName, *seed)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}

	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		JournalPath: *journal,
		Resume:      *resume,
		Log:         stderr,
	}
	if opts.Resume && opts.JournalPath == "" {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-resume requires -journal"))
	}

	// One fused unit per matrix row: the x axis becomes a config group
	// simulated in a single trace pass (core.SimulateManyTrace), so the
	// trace is walked once per row instead of once per cell. -workers
	// parallelism spans rows; the journal records one entry per
	// (row, config-group), and resume validates the recorded group against
	// the current x axis so editing -x re-runs exactly the rows it changes.
	fingerprint := fmt.Sprintf("%016x", t.Fingerprint())
	xLabels := make([]string, len(xAxis.values))
	for i, x := range xAxis.values {
		xLabels[i] = fmt.Sprintf("%s=%d", xAxis.key, x)
	}
	var units []harness.Unit[harness.Fused[float64]]
	for _, y := range yAxis.values {
		rowBase := base
		if yAxis.key != "" {
			if rowBase, err = apply(rowBase, yAxis.key, y); err != nil {
				return cli.Exit(stderr, tool, err)
			}
		}
		cfgs := make([]core.Config, len(xAxis.values))
		for i, x := range xAxis.values {
			if cfgs[i], err = apply(rowBase, xAxis.key, x); err != nil {
				return cli.Exit(stderr, tool, err)
			}
		}
		key := fmt.Sprintf("row:%s", xAxis.key)
		meta := map[string]string{
			"config": *configName,
			"metric": *metric,
			"seed":   fmt.Sprint(*seed),
			"trace":  fingerprint,
			"x":      strings.Join(xLabels, " "),
		}
		if yAxis.key != "" {
			key = fmt.Sprintf("row:%s=%d,%s", yAxis.key, y, xAxis.key)
			meta[yAxis.key] = fmt.Sprint(y)
		}
		units = append(units, harness.FusedUnit(key, meta, xLabels,
			func(runCtx context.Context) ([]float64, error) {
				results, err := core.SimulateManyTrace(runCtx, cfgs, t)
				if err != nil {
					return nil, err
				}
				row := make([]float64, len(results))
				for i, res := range results {
					if row[i], err = metricOf(*metric, res); err != nil {
						return nil, err
					}
				}
				return row, nil
			}))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := harness.Run(ctx, units, opts)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}

	// Header row.
	head := make([]string, 0, len(xAxis.values)+1)
	if yAxis.key == "" {
		head = append(head, xAxis.key)
	} else {
		head = append(head, yAxis.key+`\`+xAxis.key)
	}
	for _, x := range xAxis.values {
		head = append(head, strconv.Itoa(x))
	}
	fmt.Fprintln(stdout, strings.Join(head, ","))

	for i, y := range yAxis.values {
		row := make([]string, 0, len(xAxis.values)+1)
		if yAxis.key == "" {
			row = append(row, *metric)
		} else {
			row = append(row, strconv.Itoa(y))
		}
		r := results[i]
		for j := range xAxis.values {
			if r.OK() {
				row = append(row, strconv.FormatFloat(r.Value.At(j), 'f', 4, 64))
			} else {
				row = append(row, "error")
			}
		}
		fmt.Fprintln(stdout, strings.Join(row, ","))
	}

	if s := harness.Summarize(results); s.Failures() > 0 {
		return cli.Exit(stderr, tool, fmt.Errorf("%s", s))
	}
	return cli.ExitOK
}

func baseConfig(name string) (core.Config, error) {
	switch name {
	case "standard":
		return core.Standard(), nil
	case "victim":
		return core.Victim(), nil
	case "soft":
		return core.Soft(), nil
	case "soft-variable":
		return core.SoftVariable(), nil
	default:
		return core.Config{}, cli.UsageErrorf("unknown base config %q (want standard, victim, soft or soft-variable)", name)
	}
}

func loadTrace(workload, source, scaleName string, seed uint64) (*trace.Trace, error) {
	switch {
	case workload != "" && source != "":
		return nil, cli.UsageErrorf("-workload and -source are mutually exclusive")
	case source != "":
		data, err := os.ReadFile(source)
		if err != nil {
			return nil, err
		}
		p, err := lang.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", source, err)
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	case workload != "":
		var scale workloads.Scale
		switch scaleName {
		case "paper":
			scale = workloads.ScalePaper
		case "test":
			scale = workloads.ScaleTest
		default:
			return nil, cli.UsageErrorf("unknown scale %q", scaleName)
		}
		return workloads.Trace(workload, scale, seed)
	default:
		return nil, cli.UsageErrorf("need -workload or -source")
	}
}
