// softcache-sweep explores the design space beyond the paper's figures: it
// sweeps one or two configuration parameters over a workload and prints a
// CSV matrix of the chosen metric.
//
// Usage:
//
//	softcache-sweep -workload MV -x latency=5,10,20,30
//	softcache-sweep -workload SpMV -config soft \
//	    -x cache=4,8,16,32 -y vline=0,64,128,256 -metric miss
//	softcache-sweep -source kernel.loop -x line=16,32,64 -metric traffic
//
// Axes: cache (KiB), line (bytes), vline (bytes; 0 disables), latency
// (cycles), assoc (ways), bb (bounce-back lines), sbuf (stream buffers).
// Metrics: amat, miss, traffic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"softcache/internal/core"
	"softcache/internal/lang"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// axis is one swept parameter.
type axis struct {
	key    string
	values []int
}

// parseAxis parses "key=v1,v2,v3".
func parseAxis(s string) (axis, error) {
	key, list, ok := strings.Cut(s, "=")
	if !ok || key == "" || list == "" {
		return axis{}, fmt.Errorf("softcache-sweep: axis %q must be key=v1,v2,...", s)
	}
	var a axis
	a.key = key
	for _, v := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return axis{}, fmt.Errorf("softcache-sweep: axis %q: %v", s, err)
		}
		a.values = append(a.values, n)
	}
	return a, nil
}

// apply sets one swept parameter on the configuration.
func apply(cfg core.Config, key string, v int) (core.Config, error) {
	switch key {
	case "cache":
		cfg.CacheSize = v << 10
	case "line":
		cfg.LineSize = v
	case "vline":
		cfg.VirtualLineSize = v
	case "latency":
		cfg.Memory.LatencyCycles = v
	case "assoc":
		cfg.Assoc = v
	case "bb":
		cfg.BounceBackLines = v
		if v > 0 && cfg.BounceBackCycles == 0 {
			cfg.BounceBackCycles = 3
			cfg.SwapLockCycles = 2
		}
	case "sbuf":
		cfg.StreamBuffers = v
	default:
		return cfg, fmt.Errorf("softcache-sweep: unknown axis %q (want cache, line, vline, latency, assoc, bb or sbuf)", key)
	}
	return cfg, nil
}

// metricOf extracts the requested metric.
func metricOf(name string, r core.Result) (float64, error) {
	switch name {
	case "amat":
		return r.AMAT(), nil
	case "miss":
		return r.MissRatio(), nil
	case "traffic":
		return r.Stats.WordsPerReference(), nil
	default:
		return 0, fmt.Errorf("softcache-sweep: unknown metric %q (want amat, miss or traffic)", name)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("softcache-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload name")
	source := fs.String("source", "", "loop-nest source file")
	configName := fs.String("config", "soft", "base configuration (as in softcache-sim)")
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	seed := fs.Uint64("seed", 1, "trace generation seed")
	xSpec := fs.String("x", "", "swept axis: key=v1,v2,... (columns)")
	ySpec := fs.String("y", "", "optional second axis (rows)")
	metric := fs.String("metric", "amat", "metric: amat, miss or traffic")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *xSpec == "" {
		fmt.Fprintln(stderr, "softcache-sweep: -x is required")
		return 2
	}

	xAxis, err := parseAxis(*xSpec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	yAxis := axis{key: "", values: []int{0}}
	if *ySpec != "" {
		yAxis, err = parseAxis(*ySpec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	base, err := baseConfig(*configName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	t, err := loadTrace(*workload, *source, *scaleName, *seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// Header row.
	head := make([]string, 0, len(xAxis.values)+1)
	if yAxis.key == "" {
		head = append(head, xAxis.key)
	} else {
		head = append(head, yAxis.key+`\`+xAxis.key)
	}
	for _, x := range xAxis.values {
		head = append(head, strconv.Itoa(x))
	}
	fmt.Fprintln(stdout, strings.Join(head, ","))

	for _, y := range yAxis.values {
		row := make([]string, 0, len(xAxis.values)+1)
		if yAxis.key == "" {
			row = append(row, *metric)
		} else {
			row = append(row, strconv.Itoa(y))
		}
		for _, x := range xAxis.values {
			cfg := base
			if yAxis.key != "" {
				if cfg, err = apply(cfg, yAxis.key, y); err != nil {
					fmt.Fprintln(stderr, err)
					return 2
				}
			}
			if cfg, err = apply(cfg, xAxis.key, x); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			res, err := core.Simulate(cfg, t)
			if err != nil {
				fmt.Fprintf(stderr, "softcache-sweep: %s=%d %s=%d: %v\n", xAxis.key, x, yAxis.key, y, err)
				return 1
			}
			m, err := metricOf(*metric, res)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			row = append(row, strconv.FormatFloat(m, 'f', 4, 64))
		}
		fmt.Fprintln(stdout, strings.Join(row, ","))
	}
	return 0
}

func baseConfig(name string) (core.Config, error) {
	switch name {
	case "standard":
		return core.Standard(), nil
	case "victim":
		return core.Victim(), nil
	case "soft":
		return core.Soft(), nil
	case "soft-variable":
		return core.SoftVariable(), nil
	default:
		return core.Config{}, fmt.Errorf("softcache-sweep: unknown base config %q (want standard, victim, soft or soft-variable)", name)
	}
}

func loadTrace(workload, source, scaleName string, seed uint64) (*trace.Trace, error) {
	switch {
	case workload != "" && source != "":
		return nil, fmt.Errorf("softcache-sweep: -workload and -source are mutually exclusive")
	case source != "":
		data, err := os.ReadFile(source)
		if err != nil {
			return nil, err
		}
		p, err := lang.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", source, err)
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	case workload != "":
		var scale workloads.Scale
		switch scaleName {
		case "paper":
			scale = workloads.ScalePaper
		case "test":
			scale = workloads.ScaleTest
		default:
			return nil, fmt.Errorf("softcache-sweep: unknown scale %q", scaleName)
		}
		return workloads.Trace(workload, scale, seed)
	default:
		return nil, fmt.Errorf("softcache-sweep: need -workload or -source")
	}
}
