// softcache-sweep explores the design space beyond the paper's figures: it
// sweeps one or two configuration parameters over a workload and prints a
// CSV matrix of the chosen metric.
//
// Usage:
//
//	softcache-sweep -workload MV -x latency=5,10,20,30
//	softcache-sweep -workload SpMV -config soft \
//	    -x cache=4,8,16,32 -y vline=0,64,128,256 -metric miss
//	softcache-sweep -source kernel.loop -x line=16,32,64 -metric traffic
//	softcache-sweep -workload MV -x cache=4,8,16,32 -workers 4
//
// Axes: cache (KiB), line (bytes), vline (bytes; 0 disables), latency
// (cycles), assoc (ways), bb (bounce-back lines), sbuf (stream buffers).
// Metrics: amat, miss, traffic.
//
// The x axis is fused: each matrix row is one unit that simulates all of
// its configurations in a single pass over the trace (core.SimulateManyTrace),
// so the trace is decoded once per row instead of once per cell. Rows run
// on the experiment harness (internal/harness): in parallel under
// -workers, each bounded by -timeout, with panics converted into
// structured failed-run records on stderr and completed rows checkpointed
// to -journal so an interrupted sweep resumes with -resume. A journaled
// row replays only while its config group (the -x axis) is unchanged;
// reshaping the axis re-runs the rows it touches. Journals written by
// per-cell versions of this tool do not resume (the keys changed from
// cell: to row:). The matrix is printed in row-major order regardless of
// worker count.
//
// -shards N trades the fused walk for the set-sharded kernel: each cell
// simulates its one configuration on N set-partitioned workers
// (core.SimulateSharded). Sharded rows journal under keys suffixed
// /shards=N, so fused and sharded sweeps never resume into each other.
//
// The process exits 0 on success, 1 when any cell fails, and 2 on usage
// errors (bad axes, unknown metric or config).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"softcache/internal/cli"
	"softcache/internal/core"
	"softcache/internal/harness"
	"softcache/internal/lang"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

const tool = "softcache-sweep"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload name")
	source := fs.String("source", "", "loop-nest source file")
	traceFile := fs.String("trace", "", "saved trace file to sweep (any format: flat, sctz, din, din.gz)")
	configName := fs.String("config", "soft", "base configuration (as in softcache-sim)")
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	seed := fs.Uint64("seed", 1, "trace generation seed")
	xSpec := fs.String("x", "", "swept axis: key=v1,v2,... (columns)")
	ySpec := fs.String("y", "", "optional second axis (rows)")
	metric := fs.String("metric", "amat", "metric: amat, miss or traffic")
	workers := fs.Int("workers", 1, "sweep rows simulated in parallel")
	timeout := fs.Duration("timeout", 0, "per-row timeout (0 = none)")
	journal := fs.String("journal", "", "append completed rows to this JSONL checkpoint file")
	resume := fs.Bool("resume", false, "replay rows already completed in -journal instead of re-running them")
	check := fs.Bool("check", false, "enable runtime invariant checking in every simulation (slower)")
	shards := fs.Int("shards", 0, "simulate each cell on N set-sharded workers instead of fusing the row (0 = fused; see docs/PERF.md)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *xSpec == "" {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-x is required"))
	}

	xAxis, err := core.ParseAxis(*xSpec)
	if err != nil {
		return cli.Exit(stderr, tool, cli.Usage(err))
	}
	yAxis := core.Axis{Key: "", Values: []int{0}}
	if *ySpec != "" {
		yAxis, err = core.ParseAxis(*ySpec)
		if err != nil {
			return cli.Exit(stderr, tool, cli.Usage(err))
		}
		if yAxis.Key == xAxis.Key {
			return cli.Exit(stderr, tool, cli.UsageErrorf("-x and -y sweep the same axis %q", xAxis.Key))
		}
	}
	if _, err := core.MetricOf(*metric, core.Result{}); err != nil {
		return cli.Exit(stderr, tool, cli.Usage(err))
	}

	base, err := core.ConfigByName(*configName)
	if err != nil {
		return cli.Exit(stderr, tool, cli.Usage(err))
	}
	if *check {
		base = core.WithRuntimeChecks(base, true)
	}
	t, err := loadTrace(*workload, *source, *traceFile, *scaleName, *seed)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}

	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		JournalPath: *journal,
		Resume:      *resume,
		Log:         stderr,
	}
	if opts.Resume && opts.JournalPath == "" {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-resume requires -journal"))
	}

	// One fused unit per matrix row: the x axis becomes a config group
	// simulated in a single trace pass (core.SimulateManyTrace), so the
	// trace is walked once per row instead of once per cell. -workers
	// parallelism spans rows; the journal records one entry per
	// (row, config-group), and resume validates the recorded group against
	// the current x axis so editing -x re-runs exactly the rows it changes.
	fingerprint := fmt.Sprintf("%016x", t.Fingerprint())
	xLabels := make([]string, len(xAxis.Values))
	for i, x := range xAxis.Values {
		xLabels[i] = fmt.Sprintf("%s=%d", xAxis.Key, x)
	}
	var units []harness.Unit[harness.Fused[float64]]
	for _, y := range yAxis.Values {
		rowBase := base
		if yAxis.Key != "" {
			if rowBase, err = core.ApplyAxis(rowBase, yAxis.Key, y); err != nil {
				return cli.Exit(stderr, tool, cli.Usage(err))
			}
		}
		cfgs := make([]core.Config, len(xAxis.Values))
		for i, x := range xAxis.Values {
			if cfgs[i], err = core.ApplyAxis(rowBase, xAxis.Key, x); err != nil {
				return cli.Exit(stderr, tool, cli.Usage(err))
			}
		}
		key := fmt.Sprintf("row:%s", xAxis.Key)
		meta := map[string]string{
			"config": *configName,
			"metric": *metric,
			"seed":   fmt.Sprint(*seed),
			"trace":  fingerprint,
			"x":      strings.Join(xLabels, " "),
		}
		if yAxis.Key != "" {
			key = fmt.Sprintf("row:%s=%d,%s", yAxis.Key, y, xAxis.Key)
			meta[yAxis.Key] = fmt.Sprint(y)
		}
		if *shards > 1 {
			// Sharded rows journal under a distinct key so a fused journal
			// never resumes into a sharded sweep (or vice versa): coupled
			// configurations diverge boundedly between the two kernels.
			key += fmt.Sprintf("/shards=%d", *shards)
			meta["shards"] = fmt.Sprint(*shards)
		}
		units = append(units, harness.FusedUnit(key, meta, xLabels,
			func(runCtx context.Context) ([]float64, error) {
				row := make([]float64, len(cfgs))
				if *shards > 1 {
					// Set-sharded rows give up the fused single-pass walk:
					// each cell runs its own sharded simulation.
					for i, cfg := range cfgs {
						res, err := core.SimulateSharded(runCtx, cfg, t, *shards)
						if err != nil {
							return nil, err
						}
						if row[i], err = core.MetricOf(*metric, res); err != nil {
							return nil, err
						}
					}
					return row, nil
				}
				results, err := core.SimulateManyTrace(runCtx, cfgs, t)
				if err != nil {
					return nil, err
				}
				for i, res := range results {
					if row[i], err = core.MetricOf(*metric, res); err != nil {
						return nil, err
					}
				}
				return row, nil
			}))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := harness.Run(ctx, units, opts)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}

	// Header row.
	head := make([]string, 0, len(xAxis.Values)+1)
	if yAxis.Key == "" {
		head = append(head, xAxis.Key)
	} else {
		head = append(head, yAxis.Key+`\`+xAxis.Key)
	}
	for _, x := range xAxis.Values {
		head = append(head, strconv.Itoa(x))
	}
	fmt.Fprintln(stdout, strings.Join(head, ","))

	for i, y := range yAxis.Values {
		row := make([]string, 0, len(xAxis.Values)+1)
		if yAxis.Key == "" {
			row = append(row, *metric)
		} else {
			row = append(row, strconv.Itoa(y))
		}
		r := results[i]
		for j := range xAxis.Values {
			if r.OK() {
				row = append(row, strconv.FormatFloat(r.Value.At(j), 'f', 4, 64))
			} else {
				row = append(row, "error")
			}
		}
		fmt.Fprintln(stdout, strings.Join(row, ","))
	}

	if s := harness.Summarize(results); s.Failures() > 0 {
		return cli.Exit(stderr, tool, fmt.Errorf("%s", s))
	}
	return cli.ExitOK
}

func loadTrace(workload, source, traceFile, scaleName string, seed uint64) (*trace.Trace, error) {
	selected := 0
	for _, s := range []string{workload, source, traceFile} {
		if s != "" {
			selected++
		}
	}
	switch {
	case selected > 1:
		return nil, cli.UsageErrorf("-workload, -source and -trace are mutually exclusive")
	case traceFile != "":
		// A sweep walks the trace once per matrix row, so it materialises
		// the records rather than re-decoding the file for every row.
		f, err := trace.OpenFile(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAll(f)
	case source != "":
		data, err := os.ReadFile(source)
		if err != nil {
			return nil, err
		}
		p, err := lang.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", source, err)
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	case workload != "":
		var scale workloads.Scale
		switch scaleName {
		case "paper":
			scale = workloads.ScalePaper
		case "test":
			scale = workloads.ScaleTest
		default:
			return nil, cli.UsageErrorf("unknown scale %q", scaleName)
		}
		return workloads.Trace(workload, scale, seed)
	default:
		return nil, cli.UsageErrorf("need -workload, -source or -trace")
	}
}
