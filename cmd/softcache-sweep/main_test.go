package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runSweep(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestOneDimensionalSweep(t *testing.T) {
	out, errb, code := runSweep(t, "-workload", "MV", "-scale", "test",
		"-x", "latency=5,10,20")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "latency,5,10,20" {
		t.Fatalf("header = %q", lines[0])
	}
	cells := strings.Split(lines[1], ",")
	if cells[0] != "amat" || len(cells) != 4 {
		t.Fatalf("row = %q", lines[1])
	}
	// AMAT must grow with latency.
	var prev float64
	for i, c := range cells[1:] {
		v, err := strconv.ParseFloat(c, 64)
		if err != nil {
			t.Fatalf("cell %q: %v", c, err)
		}
		if i > 0 && v <= prev {
			t.Fatalf("AMAT not increasing with latency: %v", lines[1])
		}
		prev = v
	}
}

func TestTwoDimensionalSweep(t *testing.T) {
	out, errb, code := runSweep(t, "-workload", "SpMV", "-scale", "test",
		"-config", "soft", "-x", "vline=0,64,128", "-y", "cache=4,8", "-metric", "miss")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], `cache\vline,0,64,128`) {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4,") || !strings.HasPrefix(lines[2], "8,") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{},                  // no -x
		{"-x", "latency=5"}, // no workload
		{"-workload", "MV", "-x", "zz=5"},
		{"-workload", "MV", "-x", "latency"},
		{"-workload", "MV", "-x", "latency=abc"},
		{"-workload", "MV", "-x", "latency=5", "-metric", "bogus"},
		{"-workload", "MV", "-x", "latency=5", "-config", "bogus"},
		{"-workload", "MV", "-source", "f", "-x", "latency=5"},
	}
	for _, args := range cases {
		if _, _, code := runSweep(t, append(args, "-scale", "test")...); code == 0 {
			t.Fatalf("args %v should fail", args)
		}
	}
}
