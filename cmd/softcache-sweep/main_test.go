package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"softcache/internal/trace"
	"softcache/internal/workloads"
)

func runSweep(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestOneDimensionalSweep(t *testing.T) {
	out, errb, code := runSweep(t, "-workload", "MV", "-scale", "test",
		"-x", "latency=5,10,20")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "latency,5,10,20" {
		t.Fatalf("header = %q", lines[0])
	}
	cells := strings.Split(lines[1], ",")
	if cells[0] != "amat" || len(cells) != 4 {
		t.Fatalf("row = %q", lines[1])
	}
	// AMAT must grow with latency.
	var prev float64
	for i, c := range cells[1:] {
		v, err := strconv.ParseFloat(c, 64)
		if err != nil {
			t.Fatalf("cell %q: %v", c, err)
		}
		if i > 0 && v <= prev {
			t.Fatalf("AMAT not increasing with latency: %v", lines[1])
		}
		prev = v
	}
}

func TestTwoDimensionalSweep(t *testing.T) {
	out, errb, code := runSweep(t, "-workload", "SpMV", "-scale", "test",
		"-config", "soft", "-x", "vline=0,64,128", "-y", "cache=4,8", "-metric", "miss")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], `cache\vline,0,64,128`) {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4,") || !strings.HasPrefix(lines[2], "8,") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{},                  // no -x
		{"-x", "latency=5"}, // no workload
		{"-workload", "MV", "-x", "zz=5"},
		{"-workload", "MV", "-x", "latency"},
		{"-workload", "MV", "-x", "latency=abc"},
		{"-workload", "MV", "-x", "latency=5", "-metric", "bogus"},
		{"-workload", "MV", "-x", "latency=5", "-config", "bogus"},
		{"-workload", "MV", "-source", "f", "-x", "latency=5"},
	}
	for _, args := range cases {
		if _, _, code := runSweep(t, append(args, "-scale", "test")...); code == 0 {
			t.Fatalf("args %v should fail", args)
		}
	}
}

// TestSweepAxisEdgeCases pins down the axis-spec validation: every
// malformed spec is a usage error (exit 2), never a runtime failure or a
// silent wrong matrix.
func TestSweepAxisEdgeCases(t *testing.T) {
	usage := [][]string{
		{"-x", "latency=5,10", "-y", "latency=20"}, // x and y sweep the same key
		{"-x", "cache=0,4"},                        // structural zero
		{"-x", "cache=-4"},                         // structural negative
		{"-x", "line=0"},
		{"-x", "assoc=0,1"},
		{"-x", "latency=-1"}, // feature negative
		{"-x", "vline=-64"},
		{"-x", "bb=-2"},
		{"-x", "sbuf=-1"},
		{"-x", "latency="},      // empty value list
		{"-x", "latency=5,"},    // trailing comma = empty value
		{"-x", "latency=5,,10"}, // embedded empty value
		{"-x", "latency=5,5"},   // duplicate value (duplicate cell key)
		{"-x", "=5,10"},         // empty key
		{"-resume", "-x", "latency=5"},
	}
	for _, args := range usage {
		args = append([]string{"-workload", "MV", "-scale", "test"}, args...)
		if _, errb, code := runSweep(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr %q)", args, code, errb)
		}
	}
	// Zero is a value, not an error, for the optional features.
	ok := [][]string{
		{"-x", "vline=0,64"},
		{"-x", "bb=0,4"},
		{"-x", "sbuf=0,2"},
		{"-x", "latency=0,5"},
	}
	for _, args := range ok {
		args = append([]string{"-workload", "MV", "-scale", "test"}, args...)
		if _, errb, code := runSweep(t, args...); code != 0 {
			t.Errorf("args %v: exit %d, want 0 (stderr %q)", args, code, errb)
		}
	}
}

// TestSweepErrorPrefix: every diagnostic is prefixed with the tool name.
func TestSweepErrorPrefix(t *testing.T) {
	_, errb, code := runSweep(t, "-workload", "MV", "-scale", "test", "-x", "zz=5")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.HasPrefix(errb, "softcache-sweep: ") {
		t.Fatalf("stderr not prefixed: %q", errb)
	}
}

// TestSweepParallelMatchesSequential: the matrix is byte-identical
// whatever the worker count.
func TestSweepParallelMatchesSequential(t *testing.T) {
	args := []string{"-workload", "SpMV", "-scale", "test",
		"-x", "cache=4,8,16", "-y", "latency=10,20", "-metric", "miss"}
	seq, errb, code := runSweep(t, args...)
	if code != 0 {
		t.Fatalf("sequential: exit %d: %s", code, errb)
	}
	par, errb, code := runSweep(t, append(args, "-workers", "4")...)
	if code != 0 {
		t.Fatalf("parallel: exit %d: %s", code, errb)
	}
	if seq != par {
		t.Fatalf("parallel output differs:\n--- workers=1\n%s--- workers=4\n%s", seq, par)
	}
}

// TestSweepResume: a second run against the same journal replays every
// cell and prints the same matrix.
func TestSweepResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-workload", "MV", "-scale", "test",
		"-x", "latency=5,10,20", "-journal", journal}
	first, errb, code := runSweep(t, args...)
	if code != 0 {
		t.Fatalf("first run: exit %d: %s", code, errb)
	}
	second, errb, code := runSweep(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resume run: exit %d: %s", code, errb)
	}
	if first != second {
		t.Fatalf("resumed matrix differs:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(errb, "resumed") {
		t.Fatalf("resume not reported on stderr: %q", errb)
	}
}

// TestSweepShardedMatchesFused: for an exact-plan configuration (standard
// cache, no side structures) the set-sharded kernel must print the same
// matrix as the fused single-pass walk, at any shard count.
func TestSweepShardedMatchesFused(t *testing.T) {
	args := []string{"-workload", "MV", "-scale", "test", "-config", "standard",
		"-x", "latency=5,10,20", "-metric", "amat"}
	fused, errb, code := runSweep(t, args...)
	if code != 0 {
		t.Fatalf("fused: exit %d: %s", code, errb)
	}
	for _, shards := range []string{"2", "4"} {
		sharded, errb, code := runSweep(t, append(args, "-shards", shards)...)
		if code != 0 {
			t.Fatalf("-shards %s: exit %d: %s", shards, code, errb)
		}
		if sharded != fused {
			t.Fatalf("-shards %s matrix differs from fused:\n%s\nvs\n%s", shards, sharded, fused)
		}
	}
}

// TestSweepShardedResume: an interrupted sharded sweep resumes from the
// journal byte-identically — the satellite guarantee that -shards composes
// with the harness.FusedUnit checkpointing the fused sweeps already rely on.
func TestSweepShardedResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-workload", "MV", "-scale", "test",
		"-x", "latency=5,10,20", "-y", "cache=4,8", "-shards", "2", "-journal", journal}
	first, errb, code := runSweep(t, args...)
	if code != 0 {
		t.Fatalf("first run: exit %d: %s", code, errb)
	}
	second, errb, code := runSweep(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resume run: exit %d: %s", code, errb)
	}
	if first != second {
		t.Fatalf("resumed sharded matrix differs:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(errb, "resumed") {
		t.Fatalf("resume not reported on stderr: %q", errb)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "/shards=2") {
		t.Fatalf("journal keys lack the /shards suffix:\n%s", data)
	}
}

// TestSweepShardedJournalIsolation: a journal written by a fused sweep must
// not resume into a sharded one (and vice versa) — coupled configurations
// produce boundedly different metrics under the two kernels, so replaying
// across them would silently mix results.
func TestSweepShardedJournalIsolation(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	fusedArgs := []string{"-workload", "MV", "-scale", "test",
		"-x", "latency=5,10", "-journal", journal}
	if _, errb, code := runSweep(t, fusedArgs...); code != 0 {
		t.Fatalf("fused run: exit %d: %s", code, errb)
	}
	shardedArgs := append(fusedArgs, "-shards", "2", "-resume")
	_, errb, code := runSweep(t, shardedArgs...)
	if code != 0 {
		t.Fatalf("sharded run: exit %d: %s", code, errb)
	}
	if strings.Contains(errb, "resumed row:") {
		t.Fatalf("fused journal resumed into a sharded sweep: %q", errb)
	}
}

// TestSweepResumeRejectsReshapedAxis: a journaled row is keyed by its row
// identity but carries its config group; editing -x between runs must
// re-run the row with the new group rather than replaying a stale value.
func TestSweepResumeRejectsReshapedAxis(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	_, errb, code := runSweep(t, "-workload", "MV", "-scale", "test",
		"-x", "latency=5,10,20", "-journal", journal)
	if code != 0 {
		t.Fatalf("first run: exit %d: %s", code, errb)
	}
	out, errb, code := runSweep(t, "-workload", "MV", "-scale", "test",
		"-x", "latency=5,30", "-journal", journal, "-resume")
	if code != 0 {
		t.Fatalf("reshaped run: exit %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "latency,5,30" {
		t.Fatalf("header = %q", lines[0])
	}
	if cells := strings.Split(lines[1], ","); len(cells) != 3 || cells[1] == "error" || cells[2] == "error" {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.Contains(errb, "rejected") {
		t.Fatalf("reshaped axis not reported as rejected: %q", errb)
	}
	if strings.Contains(errb, "resumed row:") {
		t.Fatalf("stale row replayed despite reshaped axis: %q", errb)
	}
}

// TestSweepFromTraceFile: -trace accepts a saved compressed trace and
// produces the same matrix as sweeping the generating workload.
func TestSweepFromTraceFile(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mv.sctz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSCTZ(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var fromW, fromF, errb bytes.Buffer
	if code := run([]string{"-workload", "MV", "-scale", "test", "-x", "cache=4,8"}, &fromW, &errb); code != 0 {
		t.Fatalf("workload sweep: exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-trace", path, "-x", "cache=4,8"}, &fromF, &errb); code != 0 {
		t.Fatalf("trace-file sweep: exit %d: %s", code, errb.String())
	}
	if fromW.String() != fromF.String() {
		t.Fatalf("matrices diverged:\n%s\nvs\n%s", fromW.String(), fromF.String())
	}
}
