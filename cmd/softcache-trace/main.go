// softcache-trace generates, saves, inspects, converts and characterises
// reference traces.
//
// Usage:
//
//	softcache-trace -workload MV -out mv.trace        # generate and save
//	softcache-trace -workload MV -out mv.sctz         # compressed by extension
//	softcache-trace -in mv.trace -stats               # fig. 1/4 style stats
//	softcache-trace -workload SpMV -stats             # directly from a workload
//	softcache-trace -in mv.trace -dump -n 20          # first records
//	softcache-trace -workload MV -program             # print the loop nest
//	softcache-trace -in big.din.gz -out big.sctz -convert   # streaming convert
//	softcache-trace -in big.sctz -info                # stream metadata + counts
//	softcache-trace -in big.sctz -verify              # full structural check
//	softcache-trace -synth 70000000 -out ci.sctz      # adversarial synthetic
//
// Conversion, verification, info and synthesis stream in O(batch) memory:
// a multi-gigabyte capture never materialises. Input formats are sniffed
// (flat SCTR, compressed SCTZ, din text, gzipped din); the output format
// follows -format, or the -out extension when -format is auto.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"softcache/internal/cli"
	"softcache/internal/lang"
	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/metrics"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

const tool = "softcache-trace"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload to generate (see softcache-sim -workloads)")
	source := fs.String("source", "", "loop-nest source file to compile and trace (see internal/lang)")
	in := fs.String("in", "", "trace file to read (format sniffed: flat, sctz, din, din.gz)")
	din := fs.String("din", "", "Dinero-format trace file to import (no tags)")
	out := fs.String("out", "", "write the trace to this file")
	format := fs.String("format", "auto", "output format: auto, flat, sctz or din (auto picks by -out extension)")
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	seed := fs.Uint64("seed", 1, "generation seed")
	stats := fs.Bool("stats", false, "print fig. 1a/1b/4a/4b style characterisation")
	dump := fs.Bool("dump", false, "dump records")
	n := fs.Int("n", 10, "records to dump")
	program := fs.Bool("program", false, "print the workload's loop nest with resolved tags")
	convert := fs.Bool("convert", false, "stream -in/-din to -out without materialising")
	verify := fs.Bool("verify", false, "stream-decode -in/-din fully, checking structure and checksums")
	info := fs.Bool("info", false, "print stream metadata and record counts for -in/-din")
	synth := fs.Uint64("synth", 0, "generate this many synthetic records to -out (compression-adversarial, sctz)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	modes := 0
	for _, m := range []bool{*convert, *verify, *info, *synth > 0} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-convert, -verify, -info and -synth are mutually exclusive"))
	}
	if modes == 1 {
		var err error
		switch {
		case *synth > 0:
			err = runSynth(stdout, *out, *synth, *seed)
		case *convert:
			err = runConvert(stdout, *in, *din, *out, *format)
		case *verify:
			err = runVerify(stdout, *in, *din)
		case *info:
			err = runInfo(stdout, *in, *din)
		}
		if err != nil {
			return cli.Exit(stderr, tool, err)
		}
		return cli.ExitOK
	}

	t, err := obtainTrace(stdout, *workload, *source, *in, *din, *scaleName, *seed, *program)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	if t == nil {
		return cli.ExitOK // -program only
	}

	fmt.Fprintf(stdout, "trace %s: %d references\n", t.Name, t.Len())

	if *out != "" {
		f, err := pickFormat(*format, *out)
		if err != nil {
			return cli.Exit(stderr, tool, err)
		}
		if err := writeTrace(*out, f, t); err != nil {
			return cli.Exit(stderr, tool, err)
		}
		fmt.Fprintf(stdout, "wrote %s (%s)\n", *out, f)
	}

	if *dump {
		for i, r := range t.Records {
			if i >= *n {
				break
			}
			fmt.Fprintln(stdout, r)
		}
	}

	if *stats {
		printStats(stdout, t)
	}
	return cli.ExitOK
}

// pickFormat resolves the -format flag, using the output extension when
// auto: .sctz selects the compressed format, .din the Dinero text, and
// anything else the flat binary.
func pickFormat(format, outPath string) (string, error) {
	switch format {
	case "flat", "sctz", "din":
		return format, nil
	case "auto", "":
		switch filepath.Ext(outPath) {
		case ".sctz":
			return "sctz", nil
		case ".din":
			return "din", nil
		default:
			return "flat", nil
		}
	default:
		return "", cli.UsageErrorf("unknown format %q (want auto, flat, sctz or din)", format)
	}
}

func writeTrace(path, format string, t *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "sctz":
		err = trace.WriteSCTZ(f, t)
	case "din":
		err = trace.WriteDin(f, t)
	default:
		err = trace.Write(f, t)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openInput opens -in (sniffed) or -din (forced din parse) for streaming.
func openInput(in, din string) (trace.BatchReader, io.Closer, error) {
	switch {
	case in != "" && din != "":
		return nil, nil, cli.UsageErrorf("-in and -din are mutually exclusive")
	case din != "":
		f, err := os.Open(din)
		if err != nil {
			return nil, nil, err
		}
		name := strings.TrimSuffix(filepath.Base(din), ".gz")
		name = strings.TrimSuffix(name, filepath.Ext(name))
		r, err := trace.NewDinReader(f, name)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f, nil
	case in != "":
		f, err := trace.OpenFile(in)
		if err != nil {
			return nil, nil, err
		}
		return f, f, nil
	default:
		return nil, nil, cli.UsageErrorf("need -in or -din")
	}
}

func runSynth(stdout io.Writer, out string, n, seed uint64) error {
	if out == "" {
		return cli.UsageErrorf("-synth needs -out")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	written, err := trace.SynthesizeSCTZ(f, "synth", n, seed)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "synthesized %s: %d records, %d bytes (%.2f B/record)\n",
		out, written, st.Size(), float64(st.Size())/float64(max(written, 1)))
	return nil
}

func runConvert(stdout io.Writer, in, din, out, format string) error {
	if out == "" {
		return cli.UsageErrorf("-convert needs -out")
	}
	r, closer, err := openInput(in, din)
	if err != nil {
		return err
	}
	defer closer.Close()
	f, err := pickFormat(format, out)
	if err != nil {
		return err
	}
	dst, err := os.Create(out)
	if err != nil {
		return err
	}
	var written uint64
	switch f {
	case "sctz":
		written, err = trace.CopySCTZ(dst, r)
	case "din":
		written, err = trace.CopyDin(dst, r)
	default:
		written, err = trace.CopyFlat(dst, r)
	}
	if err != nil {
		dst.Close()
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "converted %d records to %s (%s)\n", written, out, f)
	return nil
}

// drain streams r to completion, returning the record count.
func drain(r trace.BatchReader) (uint64, error) {
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	var total uint64
	for {
		n, err := r.ReadBatch(*batch)
		total += uint64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

func runVerify(stdout io.Writer, in, din string) error {
	r, closer, err := openInput(in, din)
	if err != nil {
		return err
	}
	defer closer.Close()
	total, err := drain(r)
	if err != nil {
		return fmt.Errorf("verify failed after %d records: %w", total, err)
	}
	if sr := streamReaderOf(r); sr != nil {
		fmt.Fprintf(stdout, "verify OK: %d records in %d chunks\n", total, sr.Chunks())
	} else {
		fmt.Fprintf(stdout, "verify OK: %d records\n", total)
	}
	return nil
}

// streamReaderOf unwraps r down to an SCTZ StreamReader, if that is what
// is driving it.
func streamReaderOf(r trace.BatchReader) *trace.StreamReader {
	if f, ok := r.(*trace.File); ok {
		r = f.BatchReader
	}
	sr, _ := r.(*trace.StreamReader)
	return sr
}

func runInfo(stdout io.Writer, in, din string) error {
	r, closer, err := openInput(in, din)
	if err != nil {
		return err
	}
	defer closer.Close()

	formatName := "din"
	mapped := false
	inner := r
	if f, ok := r.(*trace.File); ok {
		mapped = f.Mapped()
		inner = f.BatchReader
	}
	switch inner.(type) {
	case *trace.Reader:
		formatName = "flat"
	case *trace.StreamReader:
		formatName = "sctz"
	}

	fmt.Fprintf(stdout, "format: %s\n", formatName)
	fmt.Fprintf(stdout, "name: %s\n", r.Name())
	if n := r.Len(); n >= 0 {
		fmt.Fprintf(stdout, "announced records: %d\n", n)
	} else {
		fmt.Fprintf(stdout, "announced records: unknown\n")
	}
	total, err := drain(r)
	if err != nil {
		return fmt.Errorf("decode failed after %d records: %w", total, err)
	}
	fmt.Fprintf(stdout, "records: %d\n", total)
	path := in
	if path == "" {
		path = din
	}
	var size int64
	if st, serr := os.Stat(path); serr == nil {
		size = st.Size()
		fmt.Fprintf(stdout, "bytes: %d (%.2f B/record)\n", size, float64(size)/float64(max(total, 1)))
	}
	if sr := streamReaderOf(r); sr != nil {
		fmt.Fprintf(stdout, "chunks: %d\n", sr.Chunks())
		if size > 0 {
			flatSize := int64(total)*15 + 16 + int64(len(r.Name()))
			fmt.Fprintf(stdout, "flat equivalent: %d bytes (%.2fx compression)\n", flatSize, float64(flatSize)/float64(size))
		}
	}
	fmt.Fprintf(stdout, "mapped: %v\n", mapped)
	return nil
}

func obtainTrace(stdout io.Writer, workload, source, in, din, scaleName string, seed uint64, program bool) (*trace.Trace, error) {
	selected := 0
	for _, s := range []string{workload, source, in, din} {
		if s != "" {
			selected++
		}
	}
	if selected > 1 {
		return nil, cli.UsageErrorf("-workload, -source, -in and -din are mutually exclusive")
	}
	switch {
	case din != "":
		f, err := os.Open(din)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadDin(f, strings.TrimSuffix(filepath.Base(din), filepath.Ext(din)))
	case source != "":
		data, err := os.ReadFile(source)
		if err != nil {
			return nil, err
		}
		p, err := lang.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", source, err)
		}
		if program {
			tags, err := locality.Analyze(p)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(stdout, p.StringTagged(map[int]loopir.Tags(tags)))
			return nil, nil
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	case in != "":
		f, err := trace.OpenFile(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAll(f)
	case workload != "":
		var scale workloads.Scale
		switch scaleName {
		case "paper":
			scale = workloads.ScalePaper
		case "test":
			scale = workloads.ScaleTest
		default:
			return nil, cli.UsageErrorf("unknown scale %q", scaleName)
		}
		p, err := workloads.BuildProgram(workload, scale)
		if err != nil {
			return nil, err
		}
		if program {
			tags, err := locality.Analyze(p)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(stdout, p.StringTagged(map[int]loopir.Tags(tags)))
			return nil, nil
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	default:
		return nil, cli.UsageErrorf("need -workload, -source, -in or -din")
	}
}

func printStats(w io.Writer, t *trace.Trace) {
	fmt.Fprintln(w)
	reuse := metrics.ReuseDistances(t, 8)
	tbl := metrics.NewTable("Reuse distances (fig. 1a)", "trace", metrics.ReuseBuckets...)
	tbl.AddRow(t.Name, reuse[0], reuse[1], reuse[2], reuse[3], reuse[4])
	tbl.Fprint(w, "%.3f")
	fmt.Fprintln(w)

	vec := metrics.VectorLengths(t, metrics.VectorParams{})
	tbl = metrics.NewTable("Vector lengths (fig. 1b)", "trace", metrics.VectorBuckets...)
	tbl.AddRow(t.Name, vec[0], vec[1], vec[2], vec[3], vec[4], vec[5])
	tbl.Fprint(w, "%.3f")
	fmt.Fprintln(w)

	tags := metrics.TagFractions(t)
	tbl = metrics.NewTable("Tag fractions (fig. 4a)", "trace", metrics.TagClasses...)
	tbl.AddRow(t.Name, tags[0], tags[1], tags[2], tags[3])
	tbl.Fprint(w, "%.3f")
	fmt.Fprintln(w)

	gaps := metrics.GapDistribution(t)
	tbl = metrics.NewTable("Issue gaps (fig. 4b)", "trace", metrics.GapBuckets...)
	tbl.AddRow(t.Name, gaps[0], gaps[1], gaps[2], gaps[3], gaps[4], gaps[5], gaps[6], gaps[7], gaps[8])
	tbl.Fprint(w, "%.3f")
}
