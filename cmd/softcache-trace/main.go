// softcache-trace generates, saves, inspects and characterises reference
// traces.
//
// Usage:
//
//	softcache-trace -workload MV -out mv.trace        # generate and save
//	softcache-trace -in mv.trace -stats               # fig. 1/4 style stats
//	softcache-trace -workload SpMV -stats             # directly from a workload
//	softcache-trace -in mv.trace -dump -n 20          # first records
//	softcache-trace -workload MV -program             # print the loop nest
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"softcache/internal/cli"
	"softcache/internal/lang"
	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/metrics"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

const tool = "softcache-trace"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload to generate (see softcache-sim -workloads)")
	source := fs.String("source", "", "loop-nest source file to compile and trace (see internal/lang)")
	in := fs.String("in", "", "trace file to read")
	din := fs.String("din", "", "Dinero-format trace file to import (no tags)")
	out := fs.String("out", "", "write the trace to this file")
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	seed := fs.Uint64("seed", 1, "generation seed")
	stats := fs.Bool("stats", false, "print fig. 1a/1b/4a/4b style characterisation")
	dump := fs.Bool("dump", false, "dump records")
	n := fs.Int("n", 10, "records to dump")
	program := fs.Bool("program", false, "print the workload's loop nest with resolved tags")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	t, err := obtainTrace(stdout, *workload, *source, *in, *din, *scaleName, *seed, *program)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	if t == nil {
		return cli.ExitOK // -program only
	}

	fmt.Fprintf(stdout, "trace %s: %d references\n", t.Name, t.Len())

	if *out != "" {
		if err := writeTrace(*out, t); err != nil {
			return cli.Exit(stderr, tool, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}

	if *dump {
		for i, r := range t.Records {
			if i >= *n {
				break
			}
			fmt.Fprintln(stdout, r)
		}
	}

	if *stats {
		printStats(stdout, t)
	}
	return cli.ExitOK
}

func writeTrace(path string, t *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func obtainTrace(stdout io.Writer, workload, source, in, din, scaleName string, seed uint64, program bool) (*trace.Trace, error) {
	selected := 0
	for _, s := range []string{workload, source, in, din} {
		if s != "" {
			selected++
		}
	}
	if selected > 1 {
		return nil, cli.UsageErrorf("-workload, -source, -in and -din are mutually exclusive")
	}
	switch {
	case din != "":
		f, err := os.Open(din)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadDin(f, strings.TrimSuffix(filepath.Base(din), filepath.Ext(din)))
	case source != "":
		data, err := os.ReadFile(source)
		if err != nil {
			return nil, err
		}
		p, err := lang.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", source, err)
		}
		if program {
			tags, err := locality.Analyze(p)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(stdout, p.StringTagged(map[int]loopir.Tags(tags)))
			return nil, nil
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	case workload != "":
		var scale workloads.Scale
		switch scaleName {
		case "paper":
			scale = workloads.ScalePaper
		case "test":
			scale = workloads.ScaleTest
		default:
			return nil, cli.UsageErrorf("unknown scale %q", scaleName)
		}
		p, err := workloads.BuildProgram(workload, scale)
		if err != nil {
			return nil, err
		}
		if program {
			tags, err := locality.Analyze(p)
			if err != nil {
				return nil, err
			}
			fmt.Fprint(stdout, p.StringTagged(map[int]loopir.Tags(tags)))
			return nil, nil
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	default:
		return nil, cli.UsageErrorf("need -workload, -source, -in or -din")
	}
}

func printStats(w io.Writer, t *trace.Trace) {
	fmt.Fprintln(w)
	reuse := metrics.ReuseDistances(t, 8)
	tbl := metrics.NewTable("Reuse distances (fig. 1a)", "trace", metrics.ReuseBuckets...)
	tbl.AddRow(t.Name, reuse[0], reuse[1], reuse[2], reuse[3], reuse[4])
	tbl.Fprint(w, "%.3f")
	fmt.Fprintln(w)

	vec := metrics.VectorLengths(t, metrics.VectorParams{})
	tbl = metrics.NewTable("Vector lengths (fig. 1b)", "trace", metrics.VectorBuckets...)
	tbl.AddRow(t.Name, vec[0], vec[1], vec[2], vec[3], vec[4], vec[5])
	tbl.Fprint(w, "%.3f")
	fmt.Fprintln(w)

	tags := metrics.TagFractions(t)
	tbl = metrics.NewTable("Tag fractions (fig. 4a)", "trace", metrics.TagClasses...)
	tbl.AddRow(t.Name, tags[0], tags[1], tags[2], tags[3])
	tbl.Fprint(w, "%.3f")
	fmt.Fprintln(w)

	gaps := metrics.GapDistribution(t)
	tbl = metrics.NewTable("Issue gaps (fig. 4b)", "trace", metrics.GapBuckets...)
	tbl.AddRow(t.Name, gaps[0], gaps[1], gaps[2], gaps[3], gaps[4], gaps[5], gaps[6], gaps[7], gaps[8])
	tbl.Fprint(w, "%.3f")
}
