package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestProgramPrinting(t *testing.T) {
	out, errb, code := runTool(t, "-workload", "MV", "-scale", "test", "-program")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"PROGRAM MV", "temporal=1 spatial=1", "temporal=0 spatial=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestStats(t *testing.T) {
	out, errb, code := runTool(t, "-workload", "SpMV", "-scale", "test", "-stats")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"Reuse distances", "Vector lengths", "Tag fractions", "Issue gaps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestDump(t *testing.T) {
	out, _, code := runTool(t, "-workload", "MV", "-scale", "test", "-dump", "-n", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header line + 3 records.
	if len(lines) != 4 {
		t.Fatalf("dump lines = %d:\n%s", len(lines), out)
	}
}

func TestSaveAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mv.trace")
	out, errb, code := runTool(t, "-workload", "MV", "-scale", "test", "-out", path)
	if code != 0 {
		t.Fatalf("save: exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("missing write confirmation:\n%s", out)
	}
	out2, errb2, code := runTool(t, "-in", path, "-stats")
	if code != 0 {
		t.Fatalf("reload: exit %d: %s", code, errb2)
	}
	if !strings.Contains(out2, "trace MV:") {
		t.Fatalf("reloaded trace lost its name:\n%s", out2)
	}
	// Round trip must preserve the record count.
	l1 := strings.Split(out, "\n")[0]
	l2 := strings.Split(out2, "\n")[0]
	if l1 != l2 {
		t.Fatalf("record counts differ: %q vs %q", l1, l2)
	}
}

func TestTraceErrors(t *testing.T) {
	cases := [][]string{
		{}, // nothing to do
		{"-workload", "nope"},
		{"-workload", "MV", "-in", "x"},
		{"-in", "/nonexistent"},
		{"-workload", "MV", "-scale", "huge"},
	}
	for _, args := range cases {
		if _, _, code := runTool(t, args...); code == 0 {
			t.Fatalf("args %v should fail", args)
		}
	}
}

func TestSourceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.loop")
	src := "program k\narray A(64)\ndo i = 0, 63\nload A(i)\nend\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errb, code := runTool(t, "-source", path, "-stats")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "trace k: 64 references") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// -program on a source file prints the tagged nest.
	out2, _, code := runTool(t, "-source", path, "-program")
	if code != 0 || !strings.Contains(out2, "PROGRAM k") {
		t.Fatalf("program print failed (%d):\n%s", code, out2)
	}
	// Parse errors carry the file name and line.
	bad := filepath.Join(t.TempDir(), "bad.loop")
	if err := os.WriteFile(bad, []byte("program p\n@@@\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errb2, code := runTool(t, "-source", bad)
	if code == 0 || !strings.Contains(errb2, "bad.loop") || !strings.Contains(errb2, "line 2") {
		t.Fatalf("bad source: exit %d, stderr %q", code, errb2)
	}
}

func TestDinImport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.din")
	if err := os.WriteFile(path, []byte("0 1000\n1 1008\n2 9999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errb, code := runTool(t, "-din", path, "-dump", "-n", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "trace w: 2 references") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "W 0x00001008") {
		t.Fatalf("write record missing:\n%s", out)
	}
	// Mutually exclusive with -workload.
	if _, _, code := runTool(t, "-din", path, "-workload", "MV"); code == 0 {
		t.Fatal("-din with -workload should fail")
	}
}

// TestConvertPipeline drives the streaming modes end to end: generate a
// workload, save it compressed by extension, convert sctz→flat→din→sctz,
// and check -info/-verify report consistent record counts throughout.
func TestConvertPipeline(t *testing.T) {
	dir := t.TempDir()
	sctzPath := filepath.Join(dir, "w.sctz")
	out, errb, code := runTool(t, "-workload", "MV", "-scale", "test", "-out", sctzPath)
	if code != 0 {
		t.Fatalf("generate: exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "(sctz)") {
		t.Fatalf("extension did not pick sctz:\n%s", out)
	}

	flatPath := filepath.Join(dir, "w.trace")
	if out, errb, code = runTool(t, "-in", sctzPath, "-out", flatPath, "-convert"); code != 0 {
		t.Fatalf("convert to flat: exit %d: %s", code, errb)
	}
	dinPath := filepath.Join(dir, "w.din")
	if _, errb, code = runTool(t, "-in", flatPath, "-out", dinPath, "-convert"); code != 0 {
		t.Fatalf("convert to din: exit %d: %s", code, errb)
	}
	backPath := filepath.Join(dir, "back.sctz")
	if _, errb, code = runTool(t, "-din", dinPath, "-out", backPath, "-convert"); code != 0 {
		t.Fatalf("convert din back to sctz: exit %d: %s", code, errb)
	}

	infoOut, errb, code := runTool(t, "-in", sctzPath, "-info")
	if code != 0 {
		t.Fatalf("info: exit %d: %s", code, errb)
	}
	for _, want := range []string{"format: sctz", "name: MV", "chunks:", "compression"} {
		if !strings.Contains(infoOut, want) {
			t.Fatalf("info missing %q:\n%s", want, infoOut)
		}
	}

	verifyOut, errb, code := runTool(t, "-in", backPath, "-verify")
	if code != 0 {
		t.Fatalf("verify: exit %d: %s", code, errb)
	}
	if !strings.Contains(verifyOut, "verify OK") {
		t.Fatalf("verify output:\n%s", verifyOut)
	}

	// The flat and round-tripped record counts must agree.
	recordsOf := func(infoText string) string {
		for _, line := range strings.Split(infoText, "\n") {
			if strings.HasPrefix(line, "records: ") {
				return line
			}
		}
		return ""
	}
	info2, _, _ := runTool(t, "-in", backPath, "-info")
	if recordsOf(infoOut) == "" || recordsOf(infoOut) != recordsOf(info2) {
		t.Fatalf("record counts diverged:\n%s\nvs\n%s", infoOut, info2)
	}
}

// TestVerifyCorrupt: a corrupted compressed stream fails -verify.
func TestVerifyCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.sctz")
	if _, errb, code := runTool(t, "-workload", "MV", "-scale", "test", "-out", path); code != 0 {
		t.Fatalf("generate: exit %d: %s", code, errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, errb, code := runTool(t, "-in", path, "-verify"); code == 0 {
		t.Fatalf("corrupt stream passed -verify: %s", errb)
	}
}

// TestSynth: the synthetic generator streams a deterministic sctz trace
// that verifies clean.
func TestSynth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "synth.sctz")
	out, errb, code := runTool(t, "-synth", "20000", "-out", path)
	if code != 0 {
		t.Fatalf("synth: exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "synthesized") || !strings.Contains(out, "20000 records") {
		t.Fatalf("synth output:\n%s", out)
	}
	verifyOut, errb, code := runTool(t, "-in", path, "-verify")
	if code != 0 {
		t.Fatalf("verify: exit %d: %s", code, errb)
	}
	if !strings.Contains(verifyOut, "verify OK: 20000 records") {
		t.Fatalf("verify output:\n%s", verifyOut)
	}
	// Determinism: same seed, same bytes.
	path2 := filepath.Join(dir, "synth2.sctz")
	if _, errb, code := runTool(t, "-synth", "20000", "-out", path2); code != 0 {
		t.Fatalf("synth2: exit %d: %s", code, errb)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("synthetic traces with equal seeds differ")
	}
}
