// softcache-bench regenerates the paper's figures.
//
// Usage:
//
//	softcache-bench -all                   # every figure, paper scale
//	softcache-bench -fig 6a -fig 7b        # selected figures
//	softcache-bench -all -scale test       # quick pass at test scale
//	softcache-bench -all -workers 4        # figures in parallel
//	softcache-bench -all -journal run.jsonl -resume   # checkpoint/resume
//	softcache-bench -faults                # fault-injection corpus
//	softcache-bench -list                  # list figure ids
//
// Each figure prints its table(s) — same rows and series as the paper's
// plot — followed by the qualitative shape checks. Figures run on the
// experiment harness (internal/harness): in parallel under -workers, each
// bounded by -timeout, with panics converted into structured failed-run
// records on stderr and completed figures checkpointed to -journal so an
// interrupted run resumes with -resume instead of recomputing. Reports are
// printed in paper order regardless of worker count, so the output is
// byte-identical (elapsed times aside) whether one worker ran or sixteen.
//
// The process exits 0 on success, 1 when any figure fails, panics, times
// out or has failing shape checks, and 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"softcache/internal/bench"
	"softcache/internal/cli"
	"softcache/internal/core"
	"softcache/internal/harness"
	"softcache/internal/workloads"
)

const tool = "softcache-bench"

type figList []string

func (f *figList) String() string { return fmt.Sprint([]string(*f)) }
func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var figs figList
	fs.Var(&figs, "fig", "figure id to run (repeatable); see -list")
	all := fs.Bool("all", false, "run every figure")
	list := fs.Bool("list", false, "list figure ids and exit")
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	seed := fs.Uint64("seed", 1, "trace generation seed")
	bars := fs.Bool("bars", false, "also render ASCII bar charts")
	mdPath := fs.String("md", "", "also write a Markdown report (EXPERIMENTS.md format) to this file")
	csvDir := fs.String("csv", "", "also write one CSV per figure table into this directory")
	htmlPath := fs.String("html", "", "also write an HTML report with SVG charts to this file")
	workers := fs.Int("workers", 1, "figures simulated in parallel")
	timeout := fs.Duration("timeout", 0, "per-figure timeout (0 = none)")
	journal := fs.String("journal", "", "append completed figures to this JSONL checkpoint file")
	resume := fs.Bool("resume", false, "replay figures already completed in -journal instead of re-running them")
	check := fs.Bool("check", false, "enable runtime invariant checking in every simulation (slower)")
	shards := fs.Int("shards", 0, "run single-config simulations on N set-sharded workers (0 = sequential; see docs/PERF.md)")
	faults := fs.Bool("faults", false, "run the fault-injection corpus through the pipeline instead of figures")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Fprintf(stdout, "%-10s %s\n", id, e.Title)
		}
		return cli.ExitOK
	}

	// Ctrl-C cancels in-flight figures; the harness journals what finished
	// and reports the rest as canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		JournalPath: *journal,
		Resume:      *resume,
		Log:         stderr,
	}
	if opts.Resume && opts.JournalPath == "" {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-resume requires -journal"))
	}

	if *faults {
		return cli.Exit(stderr, tool, runFaults(ctx, stdout, *seed, opts))
	}

	var scale workloads.Scale
	switch *scaleName {
	case "paper":
		scale = workloads.ScalePaper
	case "test":
		scale = workloads.ScaleTest
	default:
		return cli.Exit(stderr, tool, cli.UsageErrorf("unknown scale %q (want paper or test)", *scaleName))
	}

	ids := []string(figs)
	if *all {
		ids = bench.IDs()
	}
	if len(ids) == 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("nothing to run; use -all, -fig <id> or -list"))
	}

	bctx := bench.NewContext(scale, *seed)
	bctx.Check = *check
	bctx.Shards = *shards
	units := make([]harness.Unit[*bench.Report], 0, len(ids))
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		e, err := bench.Get(id)
		if err != nil {
			return cli.Exit(stderr, tool, cli.Usage(err))
		}
		if seen[id] {
			return cli.Exit(stderr, tool, cli.UsageErrorf("figure %s selected more than once", id))
		}
		seen[id] = true
		id := id
		key := fmt.Sprintf("fig:%s/scale=%s/seed=%d", id, *scaleName, *seed)
		meta := map[string]string{
			"figure": id,
			"scale":  *scaleName,
			"seed":   fmt.Sprint(*seed),
		}
		if *shards > 1 {
			// Sharded figures journal under a distinct key: coupled
			// configurations diverge boundedly from the sequential kernel,
			// so a sequential journal must not resume into a sharded run.
			key += fmt.Sprintf("/shards=%d", *shards)
			meta["shards"] = fmt.Sprint(*shards)
		}
		units = append(units, harness.Unit[*bench.Report]{
			Key:  key,
			Meta: meta,
			Run: func(runCtx context.Context) (*bench.Report, error) {
				return e.Run(bctx.WithContext(runCtx))
			},
		})
	}

	globalStart := time.Now()
	results, err := harness.Run(ctx, units, opts)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}

	failedChecks := 0
	var reports []*bench.Report
	for _, r := range results {
		if !r.OK() {
			continue // failed-run record already on stderr via opts.Log
		}
		report := r.Value
		reports = append(reports, report)
		if *csvDir != "" {
			files, err := bench.WriteCSV(*csvDir, report)
			if err != nil {
				return cli.Exit(stderr, tool, err)
			}
			for _, f := range files {
				fmt.Fprintf(stdout, "wrote %s\n", f)
			}
		}
		report.Fprint(stdout)
		if *bars {
			for _, t := range report.Tables {
				t.FprintBars(stdout, 50)
			}
		}
		if r.Status == harness.StatusResumed {
			fmt.Fprintf(stdout, "(resumed)\n\n")
		} else {
			fmt.Fprintf(stdout, "(elapsed %v)\n\n", r.Elapsed.Round(time.Millisecond))
		}
		if !report.Passed() {
			failedChecks++
		}
	}

	summary := harness.Summarize(results)
	if *mdPath != "" && summary.Failures() == 0 {
		if err := writeFile(*mdPath, func(f io.Writer) {
			bench.WriteMarkdown(f, reports, *scaleName, time.Since(globalStart))
		}); err != nil {
			return cli.Exit(stderr, tool, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *mdPath)
	}
	if *htmlPath != "" && summary.Failures() == 0 {
		if err := writeFile(*htmlPath, func(f io.Writer) {
			bench.WriteHTML(f, reports, *scaleName, time.Since(globalStart))
		}); err != nil {
			return cli.Exit(stderr, tool, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *htmlPath)
	}

	if summary.Failures() > 0 {
		return cli.Exit(stderr, tool, fmt.Errorf("%s", summary))
	}
	if failedChecks > 0 {
		return cli.Exit(stderr, tool, fmt.Errorf("%d figure(s) with failing shape checks", failedChecks))
	}
	return cli.ExitOK
}

func writeFile(path string, render func(io.Writer)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	render(f)
	return f.Close()
}

// runFaults derives the fault-injection corpus from a healthy test-scale
// trace and pushes every case through the trace→simulate pipeline under
// three base configurations, proving each layer errors instead of
// panicking.
func runFaults(ctx context.Context, stdout io.Writer, seed uint64, opts harness.Options) error {
	t, err := workloads.Trace("MV", workloads.ScaleTest, seed)
	if err != nil {
		return err
	}
	corpus, err := harness.Corpus(t)
	if err != nil {
		return err
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"standard", core.Standard()},
		{"soft", core.Soft()},
		{"soft-variable", core.SoftVariable()},
	}
	failures := 0
	for _, c := range configs {
		copts := opts
		if copts.JournalPath != "" {
			copts.JournalPath = fmt.Sprintf("%s.%s", opts.JournalPath, c.name)
		}
		results, err := harness.RunFaults(ctx, corpus, c.cfg, copts)
		if err != nil {
			return err
		}
		for i, r := range results {
			if !r.OK() || !r.Value.Contained(corpus[i].WantParseError) {
				failures++
				continue
			}
			switch {
			case r.Value.ParseErr != "":
				fmt.Fprintf(stdout, "%-14s %-24s rejected by reader\n", c.name, r.Value.Name)
			case r.Value.SimErr != "":
				fmt.Fprintf(stdout, "%-14s %-24s simulation error (contained)\n", c.name, r.Value.Name)
			default:
				fmt.Fprintf(stdout, "%-14s %-24s simulated %d refs\n", c.name, r.Value.Name, r.Value.References)
			}
		}
	}
	fmt.Fprintf(stdout, "fault corpus: %d cases x %d configs, %d uncontained\n",
		len(corpus), len(configs), failures)
	if failures > 0 {
		return fmt.Errorf("%d fault case(s) not contained", failures)
	}
	return nil
}
