// softcache-bench regenerates the paper's figures.
//
// Usage:
//
//	softcache-bench -all                 # every figure, paper scale
//	softcache-bench -fig 6a -fig 7b     # selected figures
//	softcache-bench -all -scale test     # quick pass at test scale
//	softcache-bench -list                # list figure ids
//
// Each figure prints its table(s) — same rows and series as the paper's
// plot — followed by the qualitative shape checks. The process exits
// non-zero if any check fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"softcache/internal/bench"
	"softcache/internal/workloads"
)

type figList []string

func (f *figList) String() string { return fmt.Sprint([]string(*f)) }
func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("softcache-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var figs figList
	fs.Var(&figs, "fig", "figure id to run (repeatable); see -list")
	all := fs.Bool("all", false, "run every figure")
	list := fs.Bool("list", false, "list figure ids and exit")
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	seed := fs.Uint64("seed", 1, "trace generation seed")
	bars := fs.Bool("bars", false, "also render ASCII bar charts")
	mdPath := fs.String("md", "", "also write a Markdown report (EXPERIMENTS.md format) to this file")
	csvDir := fs.String("csv", "", "also write one CSV per figure table into this directory")
	htmlPath := fs.String("html", "", "also write an HTML report with SVG charts to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Fprintf(stdout, "%-10s %s\n", id, e.Title)
		}
		return 0
	}

	var scale workloads.Scale
	switch *scaleName {
	case "paper":
		scale = workloads.ScalePaper
	case "test":
		scale = workloads.ScaleTest
	default:
		fmt.Fprintf(stderr, "softcache-bench: unknown scale %q (want paper or test)\n", *scaleName)
		return 2
	}

	ids := []string(figs)
	if *all {
		ids = bench.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "softcache-bench: nothing to run; use -all, -fig <id> or -list")
		return 2
	}

	ctx := bench.NewContext(scale, *seed)
	failed := 0
	globalStart := time.Now()
	var reports []*bench.Report
	for _, id := range ids {
		e, err := bench.Get(id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		start := time.Now()
		report, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "softcache-bench: figure %s: %v\n", id, err)
			return 1
		}
		reports = append(reports, report)
		if *csvDir != "" {
			files, err := bench.WriteCSV(*csvDir, report)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			for _, f := range files {
				fmt.Fprintf(stdout, "wrote %s\n", f)
			}
		}
		report.Fprint(stdout)
		if *bars {
			for _, t := range report.Tables {
				t.FprintBars(stdout, 50)
			}
		}
		fmt.Fprintf(stdout, "(elapsed %v)\n\n", time.Since(start).Round(time.Millisecond))
		if !report.Passed() {
			failed++
		}
	}
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		bench.WriteMarkdown(f, reports, *scaleName, time.Since(globalStart))
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *mdPath)
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		bench.WriteHTML(f, reports, *scaleName, time.Since(globalStart))
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *htmlPath)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "softcache-bench: %d figure(s) with failing shape checks\n", failed)
		return 1
	}
	return 0
}
