package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"1a", "6a", "9b", "12sw", "related", "ablations"} {
		if !strings.Contains(out, id) {
			t.Fatalf("figure %s missing from -list:\n%s", id, out)
		}
	}
}

func TestSingleFigure(t *testing.T) {
	out, errb, code := runBench(t, "-fig", "6a", "-scale", "test")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"Figure 6a", "Standard", "Soft", "PASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.md")
	_, errb, code := runBench(t, "-fig", "6b", "-scale", "test", "-md", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"# EXPERIMENTS", "## Figure 6b", "| benchmark |", "- [x]"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestBars(t *testing.T) {
	out, _, code := runBench(t, "-fig", "4a", "-scale", "test", "-bars")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("bar chart not rendered")
	}
}

func TestBenchErrors(t *testing.T) {
	cases := [][]string{
		{},                            // nothing selected
		{"-fig", "nope"},              // unknown figure
		{"-fig", "6a", "-scale", "x"}, // bad scale
	}
	for _, args := range cases {
		if _, _, code := runBench(t, args...); code == 0 {
			t.Fatalf("args %v should fail", args)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	_, errb, code := runBench(t, "-fig", "6a", "-scale", "test", "-csv", dir)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csvText := string(data)
	for _, want := range []string{"benchmark,Standard,Soft-T,Soft-S,Soft", "MV,", "SpMV,"} {
		if !strings.Contains(csvText, want) {
			t.Fatalf("csv missing %q:\n%s", want, csvText)
		}
	}
}
