package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"1a", "6a", "9b", "12sw", "related", "ablations"} {
		if !strings.Contains(out, id) {
			t.Fatalf("figure %s missing from -list:\n%s", id, out)
		}
	}
}

func TestSingleFigure(t *testing.T) {
	out, errb, code := runBench(t, "-fig", "6a", "-scale", "test")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"Figure 6a", "Standard", "Soft", "PASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.md")
	_, errb, code := runBench(t, "-fig", "6b", "-scale", "test", "-md", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"# EXPERIMENTS", "## Figure 6b", "| benchmark |", "- [x]"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestBars(t *testing.T) {
	out, _, code := runBench(t, "-fig", "4a", "-scale", "test", "-bars")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("bar chart not rendered")
	}
}

func TestBenchErrors(t *testing.T) {
	cases := [][]string{
		{},                            // nothing selected
		{"-fig", "nope"},              // unknown figure
		{"-fig", "6a", "-scale", "x"}, // bad scale
		{"-fig", "6a", "-resume"},     // -resume without -journal
		{"-fig", "6a", "-fig", "6a"},  // duplicate figure = duplicate unit key
	}
	for _, args := range cases {
		_, errb, code := runBench(t, args...)
		if code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr %q)", args, code, errb)
		}
		if !strings.HasPrefix(errb, "softcache-bench: ") {
			t.Fatalf("args %v: stderr not prefixed: %q", args, errb)
		}
	}
}

// stripElapsed drops the per-figure timing lines, the only output that
// legitimately differs between runs.
func stripElapsed(s string) string {
	var keep []string
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "(elapsed ") || strings.HasPrefix(l, "(resumed)") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.Join(keep, "\n")
}

// TestParallelMatchesSequential: reports and shape checks are
// byte-identical whatever the worker count (timing lines aside).
func TestParallelMatchesSequential(t *testing.T) {
	args := []string{"-fig", "6a", "-fig", "6b", "-fig", "4a", "-scale", "test"}
	seq, errb, code := runBench(t, args...)
	if code != 0 {
		t.Fatalf("sequential: exit %d: %s", code, errb)
	}
	par, errb, code := runBench(t, append(args, "-workers", "3")...)
	if code != 0 {
		t.Fatalf("parallel: exit %d: %s", code, errb)
	}
	if stripElapsed(seq) != stripElapsed(par) {
		t.Fatalf("parallel output differs:\n--- workers=1\n%s\n--- workers=3\n%s", seq, par)
	}
}

// TestJournalResume: a second run against the same journal replays the
// figure from the checkpoint — same report, marked "(resumed)".
func TestJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "bench.jsonl")
	args := []string{"-fig", "6a", "-scale", "test", "-journal", journal}
	first, errb, code := runBench(t, args...)
	if code != 0 {
		t.Fatalf("first run: exit %d: %s", code, errb)
	}
	second, errb, code := runBench(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resume run: exit %d: %s", code, errb)
	}
	if !strings.Contains(second, "(resumed)") {
		t.Fatalf("resumed run not marked:\n%s", second)
	}
	if !strings.Contains(errb, "resumed fig:6a/scale=test/seed=1") {
		t.Fatalf("resume not reported on stderr: %q", errb)
	}
	if stripElapsed(first) != stripElapsed(second) {
		t.Fatalf("resumed report differs:\n--- fresh\n%s\n--- resumed\n%s", first, second)
	}
}

// TestFaultsMode: the fault-injection corpus runs to completion with every
// case contained.
func TestFaultsMode(t *testing.T) {
	out, errb, code := runBench(t, "-faults", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"truncated-mid-stream", "tag-flip-temporal", "rejected by reader", "0 uncontained"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	_, errb, code := runBench(t, "-fig", "6a", "-scale", "test", "-csv", dir)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csvText := string(data)
	for _, want := range []string{"benchmark,Standard,Soft-T,Soft-S,Soft", "MV,", "SpMV,"} {
		if !strings.Contains(csvText, want) {
			t.Fatalf("csv missing %q:\n%s", want, csvText)
		}
	}
}
