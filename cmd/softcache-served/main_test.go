package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a bytes.Buffer safe for the daemon goroutine to write while
// the test polls it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon on a random port and returns its base URL
// plus a shutdown func that triggers the drain and returns the exit code.
func startDaemon(t *testing.T, args ...string) (string, *syncBuf, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out, errb syncBuf
	args = append([]string{"-addr", "127.0.0.1:0"}, args...)
	code := make(chan int, 1)
	go func() { code <- run(ctx, args, &out, &errb) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon did not announce its address; stdout=%q stderr=%q", out.String(), errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				base = rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, &errb, func() int {
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not exit after shutdown")
			return -1
		}
	}
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, errb, shutdown := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	req := `{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`
	resp, err = http.Post(base+"/v1/simulate", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var sim struct {
		Trace   string `json:"trace"`
		Results []struct {
			Config string  `json:"config"`
			AMAT   float64 `json:"amat"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(sim.Results) != 1 || sim.Results[0].AMAT <= 1 {
		t.Fatalf("simulate: %d %+v", resp.StatusCode, sim)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d; stderr=%q", code, errb.String())
	}
}

func TestDaemonDrainWaitsForInflight(t *testing.T) {
	base, errb, shutdown := startDaemon(t, "-drain", "30s")

	// Park a request in the daemon, then shut down while it is in flight:
	// the drain must let it finish and the daemon must still exit 0.
	started := make(chan struct{})
	result := make(chan int, 1)
	go func() {
		req := `{"workload":"SpMV","scale":"test","configs":[{"name":"standard"},{"name":"soft"}]}`
		close(started)
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(req))
		if err != nil {
			result <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		result <- resp.StatusCode
	}()
	<-started

	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d; stderr=%q", code, errb.String())
	}
	select {
	case status := <-result:
		// The request either completed (200) or lost the race with the
		// listener closing before it connected — but the daemon must not
		// have aborted a request it accepted, so a 5xx is a failure.
		if status >= 500 {
			t.Fatalf("in-flight request aborted with %d during drain", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request still blocked after drain")
	}
}

func TestDaemonUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"stray-arg"},
		{"-queue", "0"},
		{"-drain", "0s"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		ctx, cancel := context.WithCancel(context.Background())
		code := run(ctx, args, &out, &errb)
		cancel()
		if code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

func TestDaemonBadAddr(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.HasPrefix(errb.String(), tool+": ") {
		t.Fatalf("diagnostic missing tool prefix: %q", errb.String())
	}
}
