package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a bytes.Buffer safe for the daemon goroutine to write while
// the test polls it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon on a random port and returns its base URL
// plus a shutdown func that triggers the drain and returns the exit code.
func startDaemon(t *testing.T, args ...string) (string, *syncBuf, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out, errb syncBuf
	args = append([]string{"-addr", "127.0.0.1:0"}, args...)
	code := make(chan int, 1)
	go func() { code <- run(ctx, args, &out, &errb) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon did not announce its address; stdout=%q stderr=%q", out.String(), errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				base = rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, &errb, func() int {
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not exit after shutdown")
			return -1
		}
	}
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, errb, shutdown := startDaemon(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	req := `{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`
	resp, err = http.Post(base+"/v1/simulate", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var sim struct {
		Trace   string `json:"trace"`
		Results []struct {
			Config string  `json:"config"`
			AMAT   float64 `json:"amat"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(sim.Results) != 1 || sim.Results[0].AMAT <= 1 {
		t.Fatalf("simulate: %d %+v", resp.StatusCode, sim)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d; stderr=%q", code, errb.String())
	}
}

func TestDaemonDrainWaitsForInflight(t *testing.T) {
	base, errb, shutdown := startDaemon(t, "-drain", "30s")

	// Park a request in the daemon, then shut down while it is in flight:
	// the drain must let it finish and the daemon must still exit 0.
	started := make(chan struct{})
	result := make(chan int, 1)
	go func() {
		req := `{"workload":"SpMV","scale":"test","configs":[{"name":"standard"},{"name":"soft"}]}`
		close(started)
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(req))
		if err != nil {
			result <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		result <- resp.StatusCode
	}()
	<-started

	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d; stderr=%q", code, errb.String())
	}
	select {
	case status := <-result:
		// The request either completed (200) or lost the race with the
		// listener closing before it connected — but the daemon must not
		// have aborted a request it accepted, so a 5xx is a failure.
		if status >= 500 {
			t.Fatalf("in-flight request aborted with %d during drain", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request still blocked after drain")
	}
}

func TestDaemonUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"stray-arg"},
		{"-queue", "0"},
		{"-drain", "0s"},
		{"-result-cache-bytes", "0"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		ctx, cancel := context.WithCancel(context.Background())
		code := run(ctx, args, &out, &errb)
		cancel()
		if code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

func TestDaemonBadAddr(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.HasPrefix(errb.String(), tool+": ") {
		t.Fatalf("diagnostic missing tool prefix: %q", errb.String())
	}
}

// TestDaemonRouterMode boots three shard daemons plus a router daemon
// in-process, routes traffic through the router, survives one shard
// going down, and drains cleanly.
func TestDaemonRouterMode(t *testing.T) {
	var shardURLs []string
	var shardShutdowns []func() int
	for i := 0; i < 3; i++ {
		base, _, shutdown := startDaemon(t, "-shard", "s"+strconv.Itoa(i))
		shardURLs = append(shardURLs, base)
		shardShutdowns = append(shardShutdowns, shutdown)
	}
	hosts := make([]string, len(shardURLs))
	for i, u := range shardURLs {
		hosts[i] = strings.TrimPrefix(u, "http://")
	}
	base, errb, shutdown := startDaemon(t,
		"-route", strings.Join(hosts, ","),
		"-probe-interval", "100ms",
	)

	req := `{"workload":"MV","scale":"test","configs":[{"name":"soft"}]}`
	var want []byte
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("routed simulate %d: %d %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Softcache-Shard") == "" {
			t.Fatal("routed response lost the shard identity header")
		}
		if i == 0 {
			want = body
		} else if string(body) != string(want) {
			t.Fatal("routed responses for one request body differ")
		}
	}

	// Kill one shard; the fleet must keep answering identically.
	if code := shardShutdowns[0](); code != 0 {
		t.Fatalf("shard 0 exited %d", code)
	}
	shardShutdowns[0] = nil
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != string(want) {
			t.Fatalf("post-kill request %d: %d (identical=%v)", i, resp.StatusCode, string(body) == string(want))
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "softcache_router_requests_total 5") {
		t.Fatalf("router metrics missing request count:\n%s", metrics)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("router exited %d; stderr=%q", code, errb.String())
	}
	for _, stop := range shardShutdowns {
		if stop == nil {
			continue
		}
		if code := stop(); code != 0 {
			t.Fatalf("shard exited %d", code)
		}
	}
}

// postSim posts one simulate request and returns status, headers, body.
func postSim(t *testing.T, base, req string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestDaemonResultCacheRestart is the whole-process restart-recovery
// check: a daemon with -result-cache-dir answers, drains on SIGTERM
// (ctx cancel is the same path), and a new daemon over the same
// directory serves the repeat request from disk — result hit,
// byte-identical body.
func TestDaemonResultCacheRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-result-cache-dir", dir, "-shard", "s0"}
	req := `{"workload":"MV","scale":"test","configs":[{"name":"soft"},{"name":"standard"}]}`

	base, errb, shutdown := startDaemon(t, args...)
	code, hdr, first := postSim(t, base, req)
	if code != 200 || hdr.Get("X-Softcache-Result") != "miss" {
		t.Fatalf("first request: %d result=%q: %s", code, hdr.Get("X-Softcache-Result"), first)
	}
	code, hdr, second := postSim(t, base, req)
	if code != 200 || hdr.Get("X-Softcache-Result") != "hit" {
		t.Fatalf("repeat request: %d result=%q", code, hdr.Get("X-Softcache-Result"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("hit bytes differ from miss bytes")
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d; stderr=%q", code, errb.String())
	}

	base, errb, shutdown = startDaemon(t, args...)
	defer shutdown()
	code, hdr, third := postSim(t, base, req)
	if code != 200 {
		t.Fatalf("post-restart request: %d %s", code, third)
	}
	if hdr.Get("X-Softcache-Result") != "hit" {
		t.Fatalf("post-restart result = %q, want hit (stderr=%q)", hdr.Get("X-Softcache-Result"), errb.String())
	}
	if !bytes.Equal(first, third) {
		t.Fatal("post-restart response is not byte-identical to the original computation")
	}
}

func TestDaemonRouterUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-route", "ftp://nope:1"},
		{"-route", "a:1,a:1"},
		{"-rise", "0"},
		{"-retry-budget", "0"},
		{"-hedge-after", "-1s"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		ctx, cancel := context.WithCancel(context.Background())
		code := run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out, &errb)
		cancel()
		if code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}
