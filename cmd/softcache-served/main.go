// softcache-served runs the softcache simulation service: an HTTP daemon
// that accepts JSON simulation and sweep requests, coalesces concurrent
// requests for the same trace into one decode, and drives each config group
// through the fused kernel (one trace pass for the whole group).
//
// Usage:
//
//	softcache-served                       # listen on 127.0.0.1:8265
//	softcache-served -addr :9000 -workers 8 -queue 128 -cache-mb 512
//	softcache-served -timeout 30s -max-timeout 2m -drain 15s
//
// The daemon prints "listening on http://ADDR" once the socket is bound
// (with -addr :0 the line carries the chosen port). SIGINT or SIGTERM
// starts a graceful drain: the listener closes immediately, in-flight
// requests get up to -drain to finish, and the process exits 0 on a clean
// drain or 1 if requests had to be aborted.
//
// Endpoints and request formats are documented in docs/SERVE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"softcache/internal/cli"
	"softcache/internal/serve"
)

const tool = "softcache-served"

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon until ctx is canceled, writing to the supplied
// streams, and returns the process exit code. Split from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8265", "listen address (host:port; :0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "requests allowed to wait for a worker before 429")
	cacheMB := fs.Int("cache-mb", 256, "decoded-trace cache budget (MiB)")
	timeout := fs.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "largest per-request deadline a client may ask for")
	drain := fs.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() > 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("unexpected argument %q", fs.Arg(0)))
	}
	if *queue < 1 || *cacheMB < 1 || *timeout <= 0 || *maxTimeout <= 0 || *drain <= 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-queue, -cache-mb, -timeout, -max-timeout and -drain must be positive"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}

	handler := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     int64(*cacheMB) << 20,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Log:            stderr,
	})
	srv := &http.Server{Handler: handler}

	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died without a shutdown request.
		return cli.Exit(stderr, tool, err)
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "draining (up to %s)\n", *drain)
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		srv.Close()
		return cli.Exit(stderr, tool, fmt.Errorf("drain incomplete: %w", err))
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return cli.Exit(stderr, tool, err)
	}
	fmt.Fprintln(stdout, "drained, exiting")
	return cli.ExitOK
}
