// softcache-served runs the softcache simulation service: an HTTP daemon
// that accepts JSON simulation and sweep requests, coalesces concurrent
// requests for the same trace into one decode, and drives each config group
// through the fused kernel (one trace pass for the whole group).
//
// Usage:
//
//	softcache-served                       # listen on 127.0.0.1:8265
//	softcache-served -addr :9000 -workers 8 -queue 128 -cache-mb 512
//	softcache-served -timeout 30s -max-timeout 2m -drain 15s -shard s1
//	softcache-served -result-cache-dir /var/lib/softcache/results  # durable result cache
//	softcache-served -route host1:8265,host2:8265,host3:8265   # router mode
//
// With -route the daemon is a cluster router instead of a shard: it
// consistent-hash shards /v1/simulate and /v1/sweep by trace identity
// across the listed softcache-served replicas, with health-probe-driven
// circuit breakers, budgeted retry failover, and optional request
// hedging (-hedge-after). Shard-only flags (-workers, -queue, -cache-mb,
// -timeout, -max-timeout, -shard, -result-cache-dir) are ignored in
// router mode.
//
// With -result-cache-dir a shard keeps a durable result cache
// (internal/resultcache): rendered simulate/sweep/stream responses are
// stored in an append-only CRC-framed segment log and repeat requests
// are answered from disk (X-Softcache-Result: hit) without a kernel
// run. The directory belongs to one daemon at a time and survives
// restarts; -result-cache-bytes bounds the live entries.
//
// The daemon prints "listening on http://ADDR" once the socket is bound
// (with -addr :0 the line carries the chosen port). SIGINT or SIGTERM
// starts a graceful drain: the listener closes immediately, in-flight
// requests get up to -drain to finish, and the process exits 0 on a clean
// drain or 1 if requests had to be aborted.
//
// Endpoints and request formats are documented in docs/SERVE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"softcache/internal/cli"
	"softcache/internal/cluster"
	"softcache/internal/resultcache"
	"softcache/internal/serve"
)

const tool = "softcache-served"

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon until ctx is canceled, writing to the supplied
// streams, and returns the process exit code. Split from main for testing.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8265", "listen address (host:port; :0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "requests allowed to wait for a worker before 429")
	cacheMB := fs.Int("cache-mb", 256, "decoded-trace cache budget (MiB)")
	timeout := fs.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "largest per-request deadline a client may ask for")
	drain := fs.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	maxBody := fs.Int("max-body", 32, "largest request body accepted (MiB)")
	maxTraceRecords := fs.Int64("max-trace-records", 0, "record budget for one streamed trace body on /v1/simulate/trace (0 = trace format default)")
	resultDir := fs.String("result-cache-dir", "", "durable result-cache directory; empty disables the result cache (shard mode only)")
	resultBytes := fs.Int64("result-cache-bytes", 256<<20, "result-cache live-byte budget (bytes)")
	shard := fs.String("shard", "", "shard ID label for fleet deployments (X-Softcache-Shard header, /metrics)")
	route := fs.String("route", "", "router mode: comma-separated shard base URLs to consistent-hash across")
	hedgeAfter := fs.Duration("hedge-after", 0, "router: race a second replica after this delay (0 disables hedging)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "router: interval between shard /healthz probes")
	rise := fs.Int("rise", 2, "router: consecutive successes that close a tripped breaker")
	fall := fs.Int("fall", 3, "router: consecutive failures that trip a shard's breaker")
	cooldown := fs.Duration("cooldown", 5*time.Second, "router: how long a tripped breaker stays open before trial traffic")
	retries := fs.Int("retries", 0, "router: extra attempts per request (0 = one full failover pass over the fleet)")
	retryBudget := fs.Float64("retry-budget", 0.1, "router: retry tokens deposited per request (fraction of traffic retries may add)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() > 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("unexpected argument %q", fs.Arg(0)))
	}
	if *queue < 1 || *cacheMB < 1 || *timeout <= 0 || *maxTimeout <= 0 || *drain <= 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-queue, -cache-mb, -timeout, -max-timeout and -drain must be positive"))
	}
	if *maxBody < 1 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-max-body must be positive"))
	}
	if *maxTraceRecords < 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-max-trace-records must not be negative"))
	}
	if *resultBytes < 1 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-result-cache-bytes must be positive"))
	}
	if *hedgeAfter < 0 || *probeInterval <= 0 || *rise < 1 || *fall < 1 || *cooldown <= 0 || *retries < 0 || *retryBudget <= 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("router flags out of range: -hedge-after >= 0; -probe-interval, -cooldown, -retry-budget > 0; -rise, -fall >= 1; -retries >= 0"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}

	var handler http.Handler
	var closeRouter func()
	if *route != "" {
		shards := strings.Split(*route, ",")
		maxAttempts := 0 // 0 = cluster default: one full failover pass
		if *retries > 0 {
			maxAttempts = *retries + 1
		}
		router, rerr := cluster.New(cluster.Config{
			Shards:           shards,
			ProbeInterval:    *probeInterval,
			Rise:             *rise,
			Fall:             *fall,
			Cooldown:         *cooldown,
			MaxAttempts:      maxAttempts,
			RetryBudgetRatio: *retryBudget,
			HedgeAfter:       *hedgeAfter,
			MaxBodyBytes:     int64(*maxBody) << 20,
			Log:              stderr,
		})
		if rerr != nil {
			ln.Close()
			return cli.Exit(stderr, tool, cli.Usage(rerr))
		}
		handler = router
		closeRouter = router.Close
		fmt.Fprintf(stdout, "routing %d shards\n", len(shards))
	} else {
		var results *resultcache.Cache
		if *resultDir != "" {
			var rcErr error
			results, rcErr = resultcache.Open(*resultDir, *resultBytes, 0)
			if rcErr != nil {
				ln.Close()
				return cli.Exit(stderr, tool, rcErr)
			}
			// Closed after the listener drains, below: the server must not
			// serve requests against a closed log.
			defer results.Close()
			st := results.Stats()
			fmt.Fprintf(stdout, "result cache: %s (%d entries, %d bytes)\n", *resultDir, st.Entries, st.Bytes)
		}
		handler = serve.New(serve.Config{
			Workers:         *workers,
			QueueDepth:      *queue,
			CacheBytes:      int64(*cacheMB) << 20,
			DefaultTimeout:  *timeout,
			MaxTimeout:      *maxTimeout,
			MaxBodyBytes:    int64(*maxBody) << 20,
			MaxTraceRecords: *maxTraceRecords,
			ShardID:         *shard,
			ResultCache:     results,
			Log:             stderr,
		})
	}
	srv := &http.Server{Handler: handler}

	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died without a shutdown request.
		if closeRouter != nil {
			closeRouter()
		}
		return cli.Exit(stderr, tool, err)
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "draining (up to %s)\n", *drain)
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(shCtx)
	if closeRouter != nil {
		closeRouter()
	}
	if shutdownErr != nil {
		srv.Close()
		return cli.Exit(stderr, tool, fmt.Errorf("drain incomplete: %w", shutdownErr))
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return cli.Exit(stderr, tool, err)
	}
	fmt.Fprintln(stdout, "drained, exiting")
	return cli.ExitOK
}
