package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func writeLoop(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.loop")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFig5Deps: the §2.2/fig. 5 loop's dependence groups and tags — the
// internal/locality Example, surfaced on the command line.
func TestFig5Deps(t *testing.T) {
	path := writeLoop(t, `
program fig5
array A(100, 100)
array B(100, 101)
array X(100)
array Y(100)
do i = 0, 99
  do j = 0, 99
    load Y(i)
    load A(i, j)
    load B(j, i)
    load B(j, i + 1)
    load X(j)
    store Y(i)
  end
end
`)
	out, errb, code := runTool(t, "-source", path, "-deps")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{
		// The exact tags of the locality Example.
		"load Y(i)#1              temporal=true  spatial=true",
		"load A(i,j)#2            temporal=false spatial=false",
		"load B(j,i)#3            temporal=true  spatial=false",
		"load B(j,i+1)#4          temporal=true  spatial=true",
		"load X(j)#5              temporal=true  spatial=true",
		"store Y(i)#6             temporal=true  spatial=true",
		// The two uniformly generated groups and their leaders.
		"uniformly generated groups (2)",
		"B shape", "(leader load B(j,i+1)#4)",
		"Y shape", "(leader load Y(i)#1)",
		// The B group's carried dependence and the stride warning on A.
		"load B(j,i+1)#4 -> load B(j,i)#3",
		"stride 100 elements",
		"interchanging DO i inward",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestInterchangeFlagged: flipping the MV loop order gets the advisory.
func TestInterchangeFlagged(t *testing.T) {
	path := writeLoop(t, `
program mv_flipped
array A(96, 96)
array X(96)
array Y(96)
do j2 = 0, 95
  do j1 = 0, 95
    load A(j2, j1)
  end
end
`)
	out, _, code := runTool(t, "-source", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "interchanging DO j2 inward would make this reference stride-1") {
		t.Fatalf("no interchange advisory:\n%s", out)
	}
}

// TestErrorExit: error-severity findings (a provable out-of-bounds
// subscript) make the tool exit nonzero.
func TestErrorExit(t *testing.T) {
	path := writeLoop(t, `
program oob
array A(10)
do i = 0, 10
  load A(i)
end
`)
	out, _, code := runTool(t, "-source", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "error [bounds]") {
		t.Fatalf("no bounds error in output:\n%s", out)
	}
}

// TestWarningsDoNotFail: stencil-style call poisoning is a warning only.
func TestWarningsDoNotFail(t *testing.T) {
	path := writeLoop(t, `
program warned
array X(100)
do i = 0, 99
  do j = 0, 99
    load X(j)
    call helper
  end
end
`)
	out, _, code := runTool(t, "-source", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "warning [callpoison]") {
		t.Fatalf("no callpoison warning:\n%s", out)
	}
}

// jsonLine is the union shape of the -json stream: finding lines carry
// pass/severity/message, the trailing audit summary carries audit.
type jsonLine struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Pass     string `json:"pass"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	Program  string `json:"program"`
	Audit    *struct {
		Temporal struct {
			Precision float64 `json:"precision"`
		} `json:"temporal"`
		Spatial struct {
			Precision float64 `json:"precision"`
		} `json:"spatial"`
	} `json:"audit"`
}

func parseJSONLines(t *testing.T, out string) []jsonLine {
	t.Helper()
	var lines []jsonLine
	for _, raw := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		var l jsonLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("line %q is not a JSON object: %v", raw, err)
		}
		lines = append(lines, l)
	}
	return lines
}

// TestJSONOutput: -json emits one object per line — findings first, then
// the audit summary for an -audit run.
func TestJSONOutput(t *testing.T) {
	out, errb, code := runTool(t, "-workload", "MV", "-scale", "test", "-audit", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	lines := parseJSONLines(t, out)
	last := lines[len(lines)-1]
	if last.Program != "MV" || last.Audit == nil {
		t.Fatalf("last line is not the MV audit summary: %+v", last)
	}
	if last.Audit.Temporal.Precision < 0.9 || last.Audit.Spatial.Precision < 0.9 {
		t.Fatalf("MV precision below 0.9: %+v", last.Audit)
	}
	for _, l := range lines[:len(lines)-1] {
		if l.File != "MV" || l.Pass == "" || l.Message == "" || l.Severity == "" {
			t.Fatalf("finding line missing fields: %+v", l)
		}
	}
}

// TestJSONFindings: error findings stream as positioned diagnostics and
// the exit code still reflects them.
func TestJSONFindings(t *testing.T) {
	path := writeLoop(t, `
program oob
array A(10)
do i = 0, 10
  load A(i)
end
`)
	out, _, code := runTool(t, "-source", path, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, out)
	}
	var sawBounds bool
	for _, l := range parseJSONLines(t, out) {
		if l.File != path {
			t.Fatalf("finding attributed to %q, want %q", l.File, path)
		}
		if l.Pass == "bounds" && l.Severity == "error" {
			if l.Line == 0 {
				t.Fatalf("bounds finding carries no source line: %+v", l)
			}
			sawBounds = true
		}
	}
	if !sawBounds {
		t.Fatalf("no bounds error in JSON stream:\n%s", out)
	}
}

// TestAllWorkloads: -workload all vets the nine benchmarks and prints the
// audit summary table.
func TestAllWorkloads(t *testing.T) {
	out, errb, code := runTool(t, "-workload", "all", "-scale", "test", "-audit")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, name := range []string{"MDG", "BDN", "DYF", "TRF", "NAS", "Slalom", "LIV", "MV", "SpMV"} {
		if !strings.Contains(out, "== "+name+" ==") {
			t.Fatalf("workload %s missing:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "tag-precision audit: all workloads") {
		t.Fatalf("no summary table:\n%s", out)
	}
}

// TestPassesListing: -passes documents the registry.
func TestPassesListing(t *testing.T) {
	out, _, code := runTool(t, "-passes")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, p := range []string{"bounds", "deadstore", "stride", "callpoison", "indirect", "tagaudit"} {
		if !strings.Contains(out, p) {
			t.Fatalf("pass %s missing from listing:\n%s", p, out)
		}
	}
}

// TestOperationalErrors: failures that prevent the checks from running —
// an unreadable source file, an unknown workload — exit 2, leaving exit 1
// to mean "the program is dirty".
func TestOperationalErrors(t *testing.T) {
	_, errb, code := runTool(t, "-source", filepath.Join(t.TempDir(), "missing.loop"))
	if code != 2 {
		t.Fatalf("missing source: exit %d, want 2: %s", code, errb)
	}
	if !strings.Contains(errb, "softcache-vet:") {
		t.Fatalf("operational error not prefixed with the tool name: %q", errb)
	}
	if _, _, code := runTool(t, "-workload", "NOPE"); code != 2 {
		t.Fatalf("unknown workload: exit %d, want 2", code)
	}
}

// TestUsageErrors: bad flag combinations exit 2.
func TestUsageErrors(t *testing.T) {
	if _, _, code := runTool(t); code != 2 {
		t.Fatalf("no input: exit %d, want 2", code)
	}
	if _, _, code := runTool(t, "-workload", "MV", "-source", "x.loop"); code != 2 {
		t.Fatalf("both inputs: exit %d, want 2", code)
	}
	if _, _, code := runTool(t, "-workload", "MV", "-scale", "huge"); code != 2 {
		t.Fatalf("bad scale: exit %d, want 2", code)
	}
}
