package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func writeLoop(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.loop")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFig5Deps: the §2.2/fig. 5 loop's dependence groups and tags — the
// internal/locality Example, surfaced on the command line.
func TestFig5Deps(t *testing.T) {
	path := writeLoop(t, `
program fig5
array A(100, 100)
array B(100, 101)
array X(100)
array Y(100)
do i = 0, 99
  do j = 0, 99
    load Y(i)
    load A(i, j)
    load B(j, i)
    load B(j, i + 1)
    load X(j)
    store Y(i)
  end
end
`)
	out, errb, code := runTool(t, "-source", path, "-deps")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{
		// The exact tags of the locality Example.
		"load Y(i)#1              temporal=true  spatial=true",
		"load A(i,j)#2            temporal=false spatial=false",
		"load B(j,i)#3            temporal=true  spatial=false",
		"load B(j,i+1)#4          temporal=true  spatial=true",
		"load X(j)#5              temporal=true  spatial=true",
		"store Y(i)#6             temporal=true  spatial=true",
		// The two uniformly generated groups and their leaders.
		"uniformly generated groups (2)",
		"B shape", "(leader load B(j,i+1)#4)",
		"Y shape", "(leader load Y(i)#1)",
		// The B group's carried dependence and the stride warning on A.
		"load B(j,i+1)#4 -> load B(j,i)#3",
		"stride 100 elements",
		"interchanging DO i inward",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestInterchangeFlagged: flipping the MV loop order gets the advisory.
func TestInterchangeFlagged(t *testing.T) {
	path := writeLoop(t, `
program mv_flipped
array A(96, 96)
array X(96)
array Y(96)
do j2 = 0, 95
  do j1 = 0, 95
    load A(j2, j1)
  end
end
`)
	out, _, code := runTool(t, "-source", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "interchanging DO j2 inward would make this reference stride-1") {
		t.Fatalf("no interchange advisory:\n%s", out)
	}
}

// TestErrorExit: error-severity findings (a provable out-of-bounds
// subscript) make the tool exit nonzero.
func TestErrorExit(t *testing.T) {
	path := writeLoop(t, `
program oob
array A(10)
do i = 0, 10
  load A(i)
end
`)
	out, _, code := runTool(t, "-source", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "error [bounds]") {
		t.Fatalf("no bounds error in output:\n%s", out)
	}
}

// TestWarningsDoNotFail: stencil-style call poisoning is a warning only.
func TestWarningsDoNotFail(t *testing.T) {
	path := writeLoop(t, `
program warned
array X(100)
do i = 0, 99
  do j = 0, 99
    load X(j)
    call helper
  end
end
`)
	out, _, code := runTool(t, "-source", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "warning [callpoison]") {
		t.Fatalf("no callpoison warning:\n%s", out)
	}
}

// TestJSONOutput: -json emits a machine-readable result with the audit.
func TestJSONOutput(t *testing.T) {
	out, errb, code := runTool(t, "-workload", "MV", "-scale", "test", "-audit", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	var res struct {
		Program  string `json:"program"`
		Findings []struct {
			Pass     string `json:"pass"`
			Severity string `json:"severity"`
		} `json:"findings"`
		Audit *struct {
			Temporal struct {
				Precision float64 `json:"precision"`
			} `json:"temporal"`
			Spatial struct {
				Precision float64 `json:"precision"`
			} `json:"spatial"`
		} `json:"audit"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.Program != "MV" {
		t.Fatalf("program = %q", res.Program)
	}
	if res.Audit == nil {
		t.Fatal("no audit in JSON")
	}
	if res.Audit.Temporal.Precision < 0.9 || res.Audit.Spatial.Precision < 0.9 {
		t.Fatalf("MV precision below 0.9: %+v", res.Audit)
	}
}

// TestAllWorkloads: -workload all vets the nine benchmarks and prints the
// audit summary table.
func TestAllWorkloads(t *testing.T) {
	out, errb, code := runTool(t, "-workload", "all", "-scale", "test", "-audit")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, name := range []string{"MDG", "BDN", "DYF", "TRF", "NAS", "Slalom", "LIV", "MV", "SpMV"} {
		if !strings.Contains(out, "== "+name+" ==") {
			t.Fatalf("workload %s missing:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "tag-precision audit: all workloads") {
		t.Fatalf("no summary table:\n%s", out)
	}
}

// TestPassesListing: -passes documents the registry.
func TestPassesListing(t *testing.T) {
	out, _, code := runTool(t, "-passes")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, p := range []string{"bounds", "deadstore", "stride", "callpoison", "indirect", "tagaudit"} {
		if !strings.Contains(out, p) {
			t.Fatalf("pass %s missing from listing:\n%s", p, out)
		}
	}
}

// TestUsageErrors: bad flag combinations exit 2.
func TestUsageErrors(t *testing.T) {
	if _, _, code := runTool(t); code != 2 {
		t.Fatalf("no input: exit %d, want 2", code)
	}
	if _, _, code := runTool(t, "-workload", "MV", "-source", "x.loop"); code != 2 {
		t.Fatalf("both inputs: exit %d, want 2", code)
	}
	if _, _, code := runTool(t, "-workload", "MV", "-scale", "huge"); code != 2 {
		t.Fatalf("bad scale: exit %d, want 2", code)
	}
}
