// softcache-vet runs the static diagnostics passes (package vet) over a
// loop-nest program — a .loop source file or a built-in workload — and
// optionally the dynamic tag-precision audit that replays the generated
// trace through the reuse-distance oracle.
//
// Usage:
//
//	softcache-vet -source examples/dsl/stencil.loop     # lint a DSL file
//	softcache-vet -workload MV -deps                    # dependence graph + tags
//	softcache-vet -workload MV -audit                   # tag-precision audit
//	softcache-vet -workload all -audit                  # audit all 9 benchmarks
//	softcache-vet -source prog.loop -json               # machine-readable
//
// The exit status is 1 when any error-severity finding is reported (the
// program would abort at trace-generation time), 2 on usage errors and on
// operational failures (unreadable source, a failed trace generation) that
// prevented the checks from running, and 0 otherwise — warnings and
// advisories do not fail a build, and scripts can trust that exit 1 means
// the program is dirty.
//
// With -json, each finding is one JSON object per line (file, line, col,
// pass, severity, message); an -audit run appends one summary object per
// program. The text output is unchanged by this mode's existence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"softcache/internal/cli"
	"softcache/internal/depend"
	"softcache/internal/lang"
	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/vet"
	"softcache/internal/workloads"
)

const tool = "softcache-vet"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; split from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	source := fs.String("source", "", "loop-nest source file to vet (see internal/lang)")
	workload := fs.String("workload", "", `built-in workload to vet, or "all" for the 9 benchmarks`)
	scaleName := fs.String("scale", "paper", "workload scale: paper or test")
	audit := fs.Bool("audit", false, "run the dynamic tag-precision audit (generates the trace)")
	seed := fs.Uint64("seed", 1, "trace-generation seed for the audit")
	window := fs.Int("window", 0, "reuse-oracle window in distinct lines (0 = 65536)")
	lineBytes := fs.Int("line", 0, "cache-line size in bytes for the oracle (0 = 32)")
	deps := fs.Bool("deps", false, "print the dependence graph and resolved tags before the findings")
	jsonOut := fs.Bool("json", false, "emit JSON instead of human-readable text")
	listPasses := fs.Bool("passes", false, "list the registered passes and exit")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	if *listPasses {
		for _, p := range vet.Passes() {
			kind := "static"
			if p.Dynamic {
				kind = "dynamic"
			}
			fmt.Fprintf(stdout, "%-12s %-8s %s\n", p.Name, kind, p.Doc)
		}
		return cli.ExitOK
	}

	if (*source == "") == (*workload == "") {
		cli.Errorln(stderr, tool, cli.UsageErrorf("exactly one of -source or -workload is required"))
		fs.Usage()
		return cli.ExitUsage
	}

	scale := workloads.ScalePaper
	if *scaleName == "test" {
		scale = workloads.ScaleTest
	} else if *scaleName != "paper" {
		return cli.Exit(stderr, tool, cli.UsageErrorf("unknown scale %q (want paper or test)", *scaleName))
	}

	opts := vet.Options{
		Audit:       *audit,
		Seed:        *seed,
		WindowLines: *window,
		LineBytes:   *lineBytes,
	}

	var names []string
	switch {
	case *source != "":
		names = []string{*source}
	case *workload == "all":
		names = workloads.Benchmarks()
	default:
		names = []string{*workload}
	}

	var results []*vet.Result
	for _, name := range names {
		p, err := load(name, *source != "", scale)
		if err != nil {
			return cli.Exit(stderr, tool, cli.Operational(err))
		}
		res, err := vet.Run(p, opts)
		if err != nil {
			return cli.Exit(stderr, tool, cli.Operational(err))
		}
		results = append(results, res)
		if *jsonOut {
			if err := printJSON(stdout, name, res); err != nil {
				return cli.Exit(stderr, tool, cli.Operational(err))
			}
		} else {
			if *deps {
				printDeps(stdout, p)
			}
			printResult(stdout, res)
		}
	}

	if !*jsonOut && *audit && len(results) > 1 {
		printAuditTable(stdout, results)
	}

	for _, res := range results {
		if res.HasErrors() {
			return cli.ExitFailure
		}
	}
	return cli.ExitOK
}

// printJSON writes the result as line-delimited JSON: one object per
// finding so CI greps and editors can consume the stream without
// buffering, then — for audit runs — one summary object for the program.
// The file field is the .loop path for -source runs and the workload
// name otherwise.
func printJSON(w io.Writer, file string, res *vet.Result) error {
	enc := json.NewEncoder(w)
	for _, f := range res.Findings {
		line := struct {
			File     string       `json:"file"`
			Line     int          `json:"line,omitempty"`
			Col      int          `json:"col,omitempty"`
			Pass     string       `json:"pass"`
			Severity vet.Severity `json:"severity"`
			Message  string       `json:"message"`
		}{file, f.Line, f.Col, f.Pass, f.Severity, f.Message}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	if res.Audit != nil {
		summary := struct {
			File    string           `json:"file"`
			Program string           `json:"program"`
			Audit   *vet.AuditReport `json:"audit"`
		}{file, res.Program, res.Audit}
		if err := enc.Encode(summary); err != nil {
			return err
		}
	}
	return nil
}

// load builds the program: a parsed source file or a built-in workload.
func load(name string, isSource bool, scale workloads.Scale) (*loopir.Program, error) {
	if isSource {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		return lang.Parse(string(data))
	}
	return workloads.BuildProgram(name, scale)
}

// printDeps dumps the dependence graph — the groups, edges and resolved
// tags the passes reason from.
func printDeps(w io.Writer, p *loopir.Program) {
	g, err := depend.Analyze(p)
	if err != nil {
		fmt.Fprintln(w, "dependence analysis failed:", err)
		return
	}
	tags := locality.Derive(g, locality.Options{})
	fmt.Fprintf(w, "== %s: dependence graph ==\n", p.Name)
	fmt.Fprintf(w, "references (%d):\n", len(g.Refs))
	for _, r := range g.Refs {
		t := tags[r.Access.ID]
		mark := ""
		if r.Poisoned {
			mark = " poisoned"
		}
		if r.Indirect {
			mark += " indirect"
		}
		fmt.Fprintf(w, "  %-24s temporal=%-5v spatial=%-5v%s\n", r, t.Temporal, t.Spatial, mark)
	}
	fmt.Fprintf(w, "uniformly generated groups (%d):\n", len(g.Groups))
	for _, grp := range g.Groups {
		fmt.Fprintf(w, "  %s shape %s:", grp.Array, grp.Shape)
		for _, r := range grp.Refs {
			fmt.Fprintf(w, " %s", r)
		}
		fmt.Fprintf(w, " (leader %s)\n", grp.Leader())
	}
	fmt.Fprintf(w, "dependences (%d):\n", len(g.Deps))
	for _, d := range g.Deps {
		fmt.Fprintf(w, "  %s\n", d)
	}
}

// printResult writes the findings compiler-style, one per line.
func printResult(w io.Writer, res *vet.Result) {
	fmt.Fprintf(w, "== %s ==\n", res.Program)
	if len(res.Findings) == 0 {
		fmt.Fprintln(w, "no findings")
	}
	for _, f := range res.Findings {
		fmt.Fprintln(w, f)
	}
	if a := res.Audit; a != nil {
		fmt.Fprintf(w, "tag-precision audit: %d records, line %dB, window %d lines\n",
			a.Records, a.LineBytes, a.WindowLines)
		fmt.Fprintf(w, "  temporal: precision %.3f recall %.3f (%d/%d tagged, %d observed)\n",
			a.Temporal.Precision, a.Temporal.Recall,
			a.Temporal.TruePositive, a.Temporal.TaggedRefs, a.Temporal.ObservedRefs)
		fmt.Fprintf(w, "  spatial:  precision %.3f recall %.3f (%d/%d tagged, %d observed)\n",
			a.Spatial.Precision, a.Spatial.Recall,
			a.Spatial.TruePositive, a.Spatial.TaggedRefs, a.Spatial.ObservedRefs)
	}
	errs, warns := res.Count(vet.Error), res.Count(vet.Warning)
	fmt.Fprintf(w, "%d error(s), %d warning(s), %d info\n\n", errs, warns, res.Count(vet.Info))
}

// printAuditTable summarises a multi-workload audit the way
// docs/WORKLOADS.md tabulates it.
func printAuditTable(w io.Writer, results []*vet.Result) {
	fmt.Fprintln(w, "== tag-precision audit: all workloads ==")
	fmt.Fprintf(w, "%-8s %10s  %9s %9s  %9s %9s\n",
		"", "records", "T-prec", "T-recall", "S-prec", "S-recall")
	for _, res := range results {
		a := res.Audit
		if a == nil {
			continue
		}
		fmt.Fprintf(w, "%-8s %10d  %9.3f %9.3f  %9.3f %9.3f\n",
			res.Program, a.Records,
			a.Temporal.Precision, a.Temporal.Recall,
			a.Spatial.Precision, a.Spatial.Recall)
	}
}
