package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runPerfCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestQuickRunAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick benchmark matrix twice")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_kernel.json")

	// First run: no baseline exists yet; plain report to stdout.
	out, errb, code := runPerfCmd(t, "-quick", "-min-time", "1ms", "-out", jsonPath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "MV/test/vl64/bb1") {
		t.Fatalf("report missing matrix case:\n%s", out)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Fatalf("JSON artifact not written: %v", err)
	}

	// Second run: the previous -out file becomes the baseline, the delta
	// column appears, and the gate runs (two back-to-back runs of the same
	// binary stay within a generous budget).
	mdPath := filepath.Join(dir, "delta.md")
	out, errb, code = runPerfCmd(t, "-quick", "-min-time", "1ms", "-out", jsonPath,
		"-max-regress", "9", "-md", mdPath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "Δ ns/record") {
		t.Fatalf("delta report lacks delta column:\n%s", md)
	}
	if !strings.Contains(errb, "regression gate passed") {
		t.Fatalf("gate did not run:\n%s", errb)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, _, code := runPerfCmd(t, "extra-arg"); code != 2 {
		t.Fatalf("positional argument: exit %d, want 2", code)
	}
	if _, _, code := runPerfCmd(t, "-max-regress", "-1"); code != 2 {
		t.Fatalf("negative budget: exit %d, want 2", code)
	}
	if _, _, code := runPerfCmd(t, "-baseline", "/nonexistent.json"); code != 1 {
		t.Fatalf("missing explicit baseline: exit %d, want 1", code)
	}
}
