// softcache-perf runs the kernel performance-regression suite: a pinned
// benchmark matrix over the streaming simulation kernel (trace size ×
// virtual-line size × bounce-back on/off), a fused multi-configuration
// matrix (core.SimulateMany vs the per-config loop, with the measured
// speedup), a set-sharded matrix (core.SimulateShardedStream at shard
// counts {1, 2, 4, …} with the speedup over the single-shard row), and a
// trace-codec decode matrix (flat SCTR vs compressed SCTZ streaming
// decode, with the compression factor and an always-on corpus-weighted
// "sctz at or below flat" gate), producing the machine-readable
// BENCH_kernel.json artifact, an optional markdown delta report, and —
// when a baseline is given — a ns/record regression gate over all four
// matrices.
//
// Usage:
//
//	softcache-perf                          # full matrix -> BENCH_kernel.json
//	softcache-perf -quick                   # test-scale rows only (CI smoke)
//	softcache-perf -baseline BENCH_kernel.json -out /tmp/now.json
//	softcache-perf -quick -max-regress 0.15 # fail >15% ns/record regressions
//	softcache-perf -md report.md            # write the delta report to a file
//	softcache-perf -shards 8                # widen the sharded matrix; 0 skips it
//
// With no -baseline, an existing -out file from a previous run is used as
// the baseline before being overwritten. The delta report goes to stdout
// unless -md names a file.
//
// The process exits 0 on success, 1 when a case fails or the regression
// gate trips, and 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"softcache/internal/cli"
	"softcache/internal/perf"
)

const tool = "softcache-perf"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run only the test-scale rows of the matrix (CI smoke)")
	out := fs.String("out", "BENCH_kernel.json", "write the JSON report here")
	baseline := fs.String("baseline", "", "compare against this previous JSON report (default: the pre-existing -out file)")
	maxRegress := fs.Float64("max-regress", 0, "fail when any case's ns/record regresses by more than this fraction vs the baseline (0 disables)")
	md := fs.String("md", "", "write the markdown delta report to this file (default: stdout)")
	minTime := fs.Duration("min-time", 0, "minimum measurement time per case (default 300ms, 100ms with -quick)")
	seed := fs.Uint64("seed", 1, "workload trace seed")
	shards := fs.Int("shards", 4, "widest shard count of the set-sharded matrix (0 skips it)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() > 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("unexpected arguments: %v", fs.Args()))
	}
	return cli.Exit(stderr, tool, runPerf(*quick, *out, *baseline, *maxRegress, *md, *minTime, *seed, *shards, stdout, stderr))
}

func runPerf(quick bool, out, baseline string, maxRegress float64, md string, minTime time.Duration, seed uint64, shards int, stdout, stderr io.Writer) error {
	if maxRegress < 0 {
		return cli.UsageErrorf("-max-regress must be >= 0, got %g", maxRegress)
	}
	if shards < 0 {
		return cli.UsageErrorf("-shards must be >= 0, got %d", shards)
	}

	// Load the baseline before the run (and before -out is overwritten).
	basePath := baseline
	if basePath == "" {
		if _, err := os.Stat(out); err == nil {
			basePath = out
		}
	}
	var base *perf.Report
	if basePath != "" {
		var err error
		base, err = perf.ReadJSON(basePath)
		if err != nil {
			if baseline != "" {
				return err // an explicit baseline must parse
			}
			fmt.Fprintf(stderr, "%s: ignoring unreadable previous report %s: %v\n", tool, basePath, err)
		}
	}
	if baseline != "" && base == nil {
		return fmt.Errorf("baseline %s not loaded", baseline)
	}

	runner := perf.Runner{Seed: seed, MinTime: minTime, Log: stderr}
	if quick && minTime == 0 {
		runner.MinTime = 100 * time.Millisecond
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	report, err := runner.Run(ctx, perf.Matrix(quick), perf.FusedMatrix(quick), perf.ShardedMatrix(shards), perf.DecodeMatrix(quick))
	if err != nil {
		return err
	}
	report.Quick = quick
	if err := perf.WriteJSON(out, report); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "%s: wrote %s (%d cases)\n", tool, out, len(report.Cases))

	rendered := perf.Markdown(base, report)
	if md != "" {
		if err := os.WriteFile(md, []byte(rendered), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Fprint(stdout, rendered)
	}

	if base != nil && maxRegress > 0 {
		if err := perf.Gate(base, report, maxRegress); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%s: regression gate passed (budget %.0f%%)\n", tool, maxRegress*100)
	}
	return nil
}
