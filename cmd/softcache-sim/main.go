// softcache-sim runs one cache configuration over one workload (or a saved
// trace) and prints the full statistics.
//
// Usage:
//
//	softcache-sim -workload MV                      # Soft on paper-scale MV
//	softcache-sim -workload SpMV -config standard   # the baseline cache
//	softcache-sim -workload LIV -config soft -latency 30 -vline 128
//	softcache-sim -trace mv.trace -config victim    # from a saved trace
//	softcache-sim -source kernel.loop -config soft  # from loop-nest source
//	softcache-sim -workloads                        # list workloads
//
// Configurations: standard, victim, soft, soft-temporal, soft-spatial,
// soft-variable, bypass, bypass-buffer, simplified-2way, soft-prefetch,
// standard-prefetch, stream-buffers, column-assoc, subblock.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"softcache/internal/cli"
	"softcache/internal/core"
	"softcache/internal/lang"
	"softcache/internal/metrics"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

const tool = "softcache-sim"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool with the given arguments, writing to the supplied
// streams, and returns the process exit code. Split from main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet(tool, flag.ContinueOnError)
	flag.SetOutput(stderr)
	workload := flag.String("workload", "", "workload name (see -workloads)")
	source := flag.String("source", "", "loop-nest source file to compile, trace and simulate")
	traceFile := flag.String("trace", "", "binary trace file to simulate instead of a workload")
	configName := flag.String("config", "soft", "configuration name")
	scaleName := flag.String("scale", "paper", "workload scale: paper or test")
	seed := flag.Uint64("seed", 1, "trace generation seed")
	latency := flag.Int("latency", 0, "override memory latency (cycles)")
	vline := flag.Int("vline", -1, "override virtual line size (bytes; 0 disables)")
	cacheKB := flag.Int("cache", 0, "override cache size (KiB)")
	lineSize := flag.Int("line", 0, "override physical line size (bytes)")
	assoc := flag.Int("assoc", 0, "override associativity")
	stripT := flag.Bool("strip-temporal", false, "clear temporal tags in the trace")
	stripS := flag.Bool("strip-spatial", false, "clear spatial tags in the trace")
	warmup := flag.Int("warmup", 0, "exclude the first N references from the statistics (steady state)")
	shards := flag.Int("shards", 0, "simulate on N set-sharded workers (0 = sequential; see docs/PERF.md)")
	stream := flag.Bool("stream", false, "stream -trace through the simulator in O(batch) memory (no materialising)")
	listW := flag.Bool("workloads", false, "list workloads and exit")
	if err := flag.Parse(args); err != nil {
		return cli.ExitUsage
	}

	if *listW {
		for _, n := range workloads.Names() {
			d, _ := workloads.Get(n)
			fmt.Fprintf(stdout, "%-12s %s\n", n, d.Description)
		}
		return 0
	}

	cfg, err := core.ConfigByName(*configName)
	if err != nil {
		return cli.Exit(stderr, tool, cli.Usage(err))
	}
	if *latency > 0 {
		cfg = core.WithLatency(cfg, *latency)
	}
	if *vline >= 0 {
		cfg.VirtualLineSize = *vline
	}
	if *cacheKB > 0 {
		cfg.CacheSize = *cacheKB << 10
	}
	if *lineSize > 0 {
		cfg.LineSize = *lineSize
	}
	if *assoc > 0 {
		cfg.Assoc = *assoc
	}

	if *stream {
		return runStream(stdout, stderr, cfg, *traceFile, *shards, *warmup, *stripT, *stripS)
	}

	t, err := loadTrace(*workload, *source, *traceFile, *scaleName, *seed)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	if *stripT || *stripS {
		t = t.StripTags(*stripT, *stripS)
	}

	var res core.Result
	switch {
	case *shards > 1 && *warmup > 0:
		// Warm-up truncation is a prefix operation on the sequential stream;
		// it has no well-defined equivalent once the trace is set-partitioned.
		return cli.Exit(stderr, tool, cli.UsageErrorf("-warmup and -shards are mutually exclusive"))
	case *shards > 1:
		plan, perr := core.PlanShards(cfg, *shards)
		if perr != nil {
			return cli.Exit(stderr, tool, perr)
		}
		mode := "bounded-divergence"
		if plan.Exact {
			mode = "exact"
		}
		fmt.Fprintf(stderr, "%s: set-sharded run: %d shard(s) (%d requested), %s vs sequential\n",
			tool, plan.Shards, *shards, mode)
		res, err = core.SimulateSharded(context.Background(), cfg, t, *shards)
	case *warmup > 0:
		res, err = core.SimulateWarm(cfg, t, *warmup)
	default:
		res, err = core.Simulate(cfg, t)
	}
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	metrics.SimulationReport(stdout, t.CountTags(), res)
	return cli.ExitOK
}

// runStream simulates -trace without materialising it: the file (any
// sniffed format, mmapped when binary) feeds the simulator in pooled
// batches, with tags tallied on the way past for the report.
func runStream(stdout, stderr io.Writer, cfg core.Config, traceFile string, shards, warmup int, stripT, stripS bool) int {
	if traceFile == "" {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-stream needs -trace"))
	}
	if warmup > 0 {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-warmup needs the materialised path; drop -stream"))
	}
	if stripT || stripS {
		return cli.Exit(stderr, tool, cli.UsageErrorf("-strip-temporal/-strip-spatial need the materialised path; drop -stream"))
	}
	f, err := trace.OpenFile(traceFile)
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	defer f.Close()
	tr := &tagCountingReader{BatchReader: f}
	var res core.Result
	if shards > 1 {
		res, err = core.SimulateShardedStream(context.Background(), cfg, tr, shards)
	} else {
		res, err = core.SimulateStream(cfg, tr)
	}
	if err != nil {
		return cli.Exit(stderr, tool, err)
	}
	metrics.SimulationReport(stdout, tr.tags, res)
	return cli.ExitOK
}

// tagCountingReader tallies tag classes as batches stream past, standing
// in for Trace.CountTags on the non-materialising path.
type tagCountingReader struct {
	trace.BatchReader
	tags trace.TagCounts
}

func (r *tagCountingReader) ReadBatch(dst []trace.Record) (int, error) {
	n, err := r.BatchReader.ReadBatch(dst)
	r.tags.AddRecords(dst[:n])
	return n, err
}

func loadTrace(workload, source, traceFile, scaleName string, seed uint64) (*trace.Trace, error) {
	selected := 0
	for _, s := range []string{workload, source, traceFile} {
		if s != "" {
			selected++
		}
	}
	if selected > 1 {
		return nil, cli.UsageErrorf("-workload, -source and -trace are mutually exclusive")
	}
	switch {
	case source != "":
		data, err := os.ReadFile(source)
		if err != nil {
			return nil, err
		}
		p, err := lang.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", source, err)
		}
		return tracegen.Generate(p, tracegen.Options{Seed: seed})
	case traceFile != "":
		f, err := trace.OpenFile(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAll(f)
	case workload != "":
		var scale workloads.Scale
		switch scaleName {
		case "paper":
			scale = workloads.ScalePaper
		case "test":
			scale = workloads.ScaleTest
		default:
			return nil, cli.UsageErrorf("unknown scale %q", scaleName)
		}
		return workloads.Trace(workload, scale, seed)
	default:
		return nil, cli.UsageErrorf("need -workload or -trace (or -workloads to list)")
	}
}
