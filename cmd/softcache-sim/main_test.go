package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

func runSim(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestListWorkloads(t *testing.T) {
	out, _, code := runSim(t, "-workloads")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"MV", "SpMV", "MDG-kernel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("workload list missing %s:\n%s", want, out)
		}
	}
}

func TestSimulateWorkload(t *testing.T) {
	out, errb, code := runSim(t, "-workload", "MV", "-scale", "test", "-config", "soft")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"AMAT", "miss ratio", "bounce-back", "virtual fills"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllConfigNames(t *testing.T) {
	for _, cfg := range []string{
		"standard", "victim", "soft", "soft-temporal", "soft-spatial",
		"soft-variable", "bypass", "bypass-buffer", "simplified-2way",
		"soft-prefetch", "standard-prefetch", "stream-buffers", "column-assoc",
		"subblock",
	} {
		_, errb, code := runSim(t, "-workload", "SpMV", "-scale", "test", "-config", cfg)
		if code != 0 {
			t.Fatalf("config %s: exit %d: %s", cfg, code, errb)
		}
	}
}

func TestOverrides(t *testing.T) {
	out, errb, code := runSim(t, "-workload", "MV", "-scale", "test",
		"-config", "standard", "-cache", "16", "-line", "64", "-assoc", "2", "-latency", "30")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "16K/64B/2-way") {
		t.Fatalf("overrides not applied:\n%s", out)
	}
}

func TestStripTags(t *testing.T) {
	out, _, code := runSim(t, "-workload", "MV", "-scale", "test",
		"-config", "soft", "-strip-temporal", "-strip-spatial")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "spatial=0 temporal=0 both=0") {
		t.Fatalf("tags not stripped:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // neither -workload nor -trace
		{"-workload", "nope"},               // unknown workload
		{"-workload", "MV", "-scale", "xx"}, // bad scale
		{"-workload", "MV", "-config", "zz"},
		{"-workload", "MV", "-trace", "f"}, // mutually exclusive
		{"-trace", "/nonexistent/file"},
	}
	for _, args := range cases {
		if _, _, code := runSim(t, args...); code == 0 {
			t.Fatalf("args %v should fail", args)
		}
	}
}

// TestOutputIsSharedReport pins the CLI's output to the shared
// metrics.SimulationReport renderer. Together with the serve package's E2E
// test (which pins /v1/simulate?format=text to the same renderer), this
// makes CLI and daemon reports byte-identical for identical runs.
func TestOutputIsSharedReport(t *testing.T) {
	out, errb, code := runSim(t, "-workload", "MV", "-scale", "test", "-seed", "3", "-config", "soft")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(core.Soft(), tr)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	metrics.SimulationReport(&want, tr.CountTags(), res)
	if out != want.String() {
		t.Fatalf("CLI output diverged from metrics.SimulationReport:\n--- CLI\n%s--- shared\n%s", out, want.String())
	}
}

// TestSharded pins the -shards flag: an exact config's sharded report is
// byte-identical to the sequential one, the stderr note states the
// effective shard count and divergence class, and -warmup is rejected.
func TestSharded(t *testing.T) {
	seq, _, code := runSim(t, "-workload", "MV", "-scale", "test", "-config", "standard")
	if code != 0 {
		t.Fatalf("sequential exit %d", code)
	}
	shd, errb, code := runSim(t, "-workload", "MV", "-scale", "test", "-config", "standard", "-shards", "4")
	if code != 0 {
		t.Fatalf("sharded exit %d: %s", code, errb)
	}
	if shd != seq {
		t.Fatalf("exact config diverged under -shards 4:\n--- sharded\n%s--- sequential\n%s", shd, seq)
	}
	if !strings.Contains(errb, "4 shard(s) (4 requested), exact vs sequential") {
		t.Fatalf("stderr note missing shard count/class:\n%s", errb)
	}
	_, errb, code = runSim(t, "-workload", "MV", "-scale", "test", "-config", "soft", "-shards", "4")
	if code != 0 {
		t.Fatalf("soft sharded exit %d: %s", code, errb)
	}
	if !strings.Contains(errb, "bounded-divergence vs sequential") {
		t.Fatalf("coupled config not reported as bounded-divergence:\n%s", errb)
	}
	if _, _, code := runSim(t, "-workload", "MV", "-scale", "test", "-shards", "2", "-warmup", "100"); code != 2 {
		t.Fatalf("-warmup with -shards: exit %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	if _, _, code := runSim(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatal("unknown flag should exit 2")
	}
}

// TestStreamMatchesMaterialised pins -stream against the in-memory path:
// both must produce identical statistics from the same compressed trace,
// and the flat/sctz/streamed answers must all agree.
func TestStreamMatchesMaterialised(t *testing.T) {
	dir := t.TempDir()
	gen := func(ext string) string { return filepath.Join(dir, "mv"+ext) }
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	flatPath, sctzPath := gen(".trace"), gen(".sctz")
	ff, err := os.Create(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(ff, tr); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	zf, err := os.Create(sctzPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSCTZ(zf, tr); err != nil {
		t.Fatal(err)
	}
	zf.Close()

	runOne := func(args ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	base := runOne("-trace", flatPath, "-config", "soft")
	for _, args := range [][]string{
		{"-trace", sctzPath, "-config", "soft"},
		{"-trace", flatPath, "-config", "soft", "-stream"},
		{"-trace", sctzPath, "-config", "soft", "-stream"},
		{"-trace", sctzPath, "-config", "soft", "-stream", "-shards", "2"},
	} {
		if got := runOne(args...); got != base {
			t.Errorf("%v diverged from the flat materialised run:\n%s\nvs\n%s", args, got, base)
		}
	}
}
